// spnhbm — command-line front end to the toolflow.
//
//   spnhbm compile <spn.txt> [--format cfp|lns|posit|f64] [--out design.bin]
//                  [--dot graph.dot]
//       Compile a textual SPN to a datapath; print the module report and
//       optionally write the binary design artifact / Graphviz rendering.
//
//   spnhbm resources <spn.txt> [--format ...] [--pes N] [--platform hbm|f1]
//       Estimate the design's resource vector and placement feasibility.
//       --sweep prints the max routable PE count for every arithmetic
//       format on both platforms as a table, with the resource (or
//       routing/channel cap) that blocks the next PE.
//
//   spnhbm tune <spn.txt|design.bin> [--format ...] [--query ...]
//               [--seed S] [--budget N] [--pes N] [--platform hbm|f1]
//               [--requests N] [--request-samples N] [--arrival-us U]
//               [--sparse-fraction F] [--sparse-density D]
//               [--out manifest.json] [--log search.log]
//       Search the serving-configuration space {block_samples, pe_count,
//       HBM channel packing, crossbar, batch_samples, flush_deadline_us}
//       for this model: grid seed + hill climbing, every candidate scored
//       by replaying a representative workload (--requests/--request-
//       samples/--arrival-us/--sparse-*) through the calibrated simulator
//       in virtual time. Deterministic in --seed: the search log (stdout,
//       and --log FILE) is byte-identical across runs. --out writes the
//       winning config as a versioned TuningManifest JSON keyed by the
//       model's content hash + query kind; infer/serve load it back with
//       --tuning and refuse manifests minted for different compiled bits.
//
//   spnhbm simulate <spn.txt> [--format ...] [--pes N] [--threads N]
//                   [--samples N] [--no-transfers] [--pcie GEN]
//                   [--metrics-out FILE] [--trace-out FILE]
//                   [--fault-plan plan.json]
//       Run the timing simulation and print end-to-end statistics.
//       --metrics-out dumps the metrics registry as JSON; --trace-out
//       writes a Chrome trace-event JSON (virtual-time swim lanes per HBM
//       channel, PCIe DMA, PE and control thread) for Perfetto.
//       --fault-plan arms the deterministic fault injector (HBM stalls /
//       ECC corruption, DMA aborts, PE launch faults) for the run.
//
//   spnhbm infer <spn.txt|design.bin> <samples.csv> [--engine fpga|cpu|gpu]
//                [--query joint|marginal|mpe] [--sparse]
//                [--evidence 'x3=1,x17=0' ...] [--tuning manifest.json]
//       Run real samples (one CSV row of byte features per line) through
//       the unified inference-engine interface (default: the simulated
//       accelerator); print one probability per line. The model may be a
//       textual SPN or a binary design artifact from `compile --out`
//       (recognised by its magic). --query compiles the datapath for a
//       marginal or MPE (max-product) query instead of the joint;
//       --sparse re-encodes the CSV rows as CSR sparse evidence streams
//       (bit-identical results, smaller modelled transfers); each
//       --evidence flag is one sparse sample given directly as
//       index=value pairs — variables not named carry no evidence
//       (non-joint queries) or byte 0 (joint), and no CSV is needed.
//
//   spnhbm serve <spn.txt> --requests <samples.csv>
//                [--queries joint,marginal,mpe]
//                [--engines fpga,cpu,gpu] [--format ...] [--pes N]
//                [--batch N] [--max-latency-us U] [--queue-bound N]
//                [--policy rr|load] [--metrics-out FILE] [--trace-out FILE]
//                [--fault-plan plan.json] [--request-timeout US]
//       Replay each CSV row as an independent single-sample request
//       through the async batching InferenceServer; print one probability
//       per line plus the server/engine statistics. Engines may carry a
//       failover tier as name:prio (e.g. fpga:0,cpu:1 — the CPU only
//       serves while every tier-0 engine is quarantined). --fault-plan
//       arms the deterministic fault injector and wraps every engine in
//       the chaos decorator; the self-healing server (retries, failover,
//       quarantine + probes, deadlines) then recovers where it can, and
//       rows that still fail print an "error:" line instead of a
//       probability. --request-timeout sets the per-request deadline.
//       --queries compiles and serves one lane per listed query kind —
//       a marginal lane is addressed as "model@1#marginal" over the
//       wire, or by a plain kRequest2 query-kind byte.
//       --tuning manifest.json (repeatable; name=path with --model)
//       applies a `spnhbm tune` manifest to the lane whose query kind it
//       was minted for: the engine composes with the tuned block size and
//       HBM channel packing, the lane batches to the tuned batch_samples
//       and flush deadline, and --pes defaults to the tuned PE count.
//       Fleet serving sizes each replica's partition from the manifest
//       when --fleet-pe-slots is not given (deficit-checked placement).
//
//   spnhbm serve --model name=path[@version] [--model ...]
//                --requests name=samples.csv [--requests ...]
//                [--engines fpga,cpu,gpu] [--format ...] [common flags]
//       Multi-model serving: each --model loads an artifact (textual SPN
//       or binary design) into the model registry and registers one
//       engine per --engines entry for it; each --requests replays a CSV
//       against the named model through the same server. Batches never
//       mix models; per-model stats are printed at the end.
//
//   spnhbm serve ... --listen PORT [--port-file FILE] [--rate-limit RPS]
//                [--burst N] [--max-inflight-samples N] [--max-connections N]
//       Remote serving: instead of replaying a local CSV, expose the
//       server over the length-prefixed TCP wire protocol (loopback).
//       PORT 0 picks an ephemeral port; --port-file writes the bound
//       port for scripts. Admission control (token bucket + queue-depth
//       shedding) answers overload with the retryable OVERLOADED status.
//       Runs until a client sends the shutdown frame (loadgen
//       --shutdown) or SIGINT/SIGTERM, then drains and prints the usual
//       per-engine report plus the RPC conservation summary.
//
//   spnhbm serve --model ... --fleet-devices N --listen PORT
//                [--fleet-replicas R] [--fleet-pe-slots S]
//                [--rebalance-ms MS] [common flags]
//       Fleet serving: N simulated FPGA cards behind one router. Every
//       --model is deployed as R spatial tenants (disjoint partitions,
//       placed on the least-loaded card; adding one is a partial
//       reconfiguration that leaves co-resident tenants serving), and the
//       RPC front end routes each request to a replica, failing over when
//       a member's queue is full. --rebalance-ms periodically runs the
//       telemetry-driven rebalancer: models taking a hot share of the
//       traffic gain a replica, cold ones shrink (never below one).
//
//   spnhbm loadgen --connect HOST:PORT --requests <samples.csv>
//                  [--model name[@version]] [--count N] [--rate RPS]
//                  [--arrival fixed|poisson|bursty] [--burst N]
//                  [--connections N] [--seed S] [--deadline-us U]
//                  [--query joint|marginal|mpe] [--sparse]
//                  [--shutdown] [--metrics-out FILE] [--trace-out FILE]
//                  [--trace-sample N] [--report-out FILE]
//       Open-loop load generator: replays CSV rows as requests on a
//       deterministic, seeded arrival schedule (arrivals never wait for
//       responses) and reports achieved throughput plus wall-clock
//       latency percentiles, overall and per model. --shutdown asks the
//       server to drain and exit afterwards (CI teardown). --trace-out
//       enables distributed tracing: 1-in-N head-sampled requests
//       (--trace-sample N, default every request) carry a trace context
//       to the server, and the client-side spans land in the Chrome
//       trace. --report-out writes a BENCH-shaped JSON latency report
//       for tools/bench_compare. --query targets a marginal/MPE lane
//       (kRequest2 frames) and --sparse re-encodes every payload row as
//       a CSR sparse evidence stream.
//
//   spnhbm loadgen --connect HOST:PORT --model a[:weight] --model b[:weight]
//                  --requests a=a.csv --requests b=b.csv [...]
//       Mixed-model traffic: every request draws its model from the
//       weighted mix (deterministic in --seed); each model cycles its own
//       payload CSV (--requests name=path, or one pathless --requests CSV
//       shared by all). The report breaks sent counts down per model.
//
//   spnhbm infer --connect HOST:PORT <samples.csv> [--model name[@version]]
//                [--query joint|marginal|mpe] [--sparse]
//                [--evidence 'x3=1,x17=0' ...]
//       Remote inference against a `serve --listen` process; prints one
//       probability per row, byte-identical to the local engine path.
//       --query/--sparse/--evidence mirror the local flags over the v4
//       wire (kRequest2 frames); the server must serve a lane of that
//       query kind (serve --queries ...).
//
//   spnhbm top --connect HOST:PORT [--interval-ms MS] [--count N | --once]
//       Live introspection of a `serve --listen` process over the ADMIN
//       wire frames: per-poll request/latency deltas from the server's
//       Prometheus metrics, per-engine health, the fleet replica map and
//       the slowest traced requests, refreshed every --interval-ms
//       (default 1000) until interrupted (--once = a single snapshot;
//       --count N stops after N polls).
//
//   spnhbm soak --model name=path [--model ...] --requests name=csv [...]
//               [--seed S] [--minutes M] [--fault-plan plan.json]
//               [--disarm] [--devices N] [--replicas R] [--clients C]
//               [--wave-requests W] [--swaps-per-wave K]
//               [--rebalance-every E] [--report-out FILE]
//       Self-contained chaos soak: a fleet of N simulated devices behind
//       an RPC server on a loopback port, resilient clients pushing
//       waves of traffic while replicas hot-swap and the rebalancer
//       runs, with the --fault-plan chaos (device AND network sites)
//       armed throughout. Runs M minutes of virtual reconfiguration
//       time, then asserts every conservation identity, health
//       convergence and zero leaks. stdout is seed-deterministic
//       (--disarm loads the plan without arming it, and the output is
//       byte-identical to a run with no plan at all); wall-clock detail
//       goes to stderr. Exits 0 only when every assertion holds.
//
//   spnhbm learn <data.csv> [--min-instances N] [--threshold X]
//       Learn a Mixed SPN from CSV data; print its textual description.
//
//   spnhbm sample <spn.txt> [--count N] [--seed S]
//       Draw samples from the SPN's joint distribution (CSV to stdout).
//
//   spnhbm version
//       Print the build version and wire-protocol version.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "spnhbm/compiler/serialize.hpp"
#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/engine/chaos_engine.hpp"
#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/gpu_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/fault/fault.hpp"
#include "spnhbm/fleet/router.hpp"
#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/model/registry.hpp"
#include "spnhbm/model/tuning.hpp"
#include "spnhbm/rpc/client.hpp"
#include "spnhbm/rpc/loadgen.hpp"
#include "spnhbm/rpc/resilient_client.hpp"
#include "spnhbm/rpc/server.hpp"
#include "spnhbm/soak/soak.hpp"
#include "spnhbm/runtime/inference_runtime.hpp"
#include "spnhbm/spn/dot_export.hpp"
#include "spnhbm/spn/io_csv.hpp"
#include "spnhbm/spn/learn.hpp"
#include "spnhbm/spn/queries.hpp"
#include "spnhbm/spn/text_format.hpp"
#include "spnhbm/telemetry/metrics.hpp"
#include "spnhbm/telemetry/trace.hpp"
#include "spnhbm/tune/tuner.hpp"
#include "spnhbm/util/strings.hpp"
#include "spnhbm/util/version.hpp"

namespace {

using namespace spnhbm;

[[noreturn]] void usage() {
  std::fputs(
      "usage: spnhbm "
      "<compile|resources|simulate|infer|serve|tune|loadgen|soak|top|learn|"
      "sample|version> ...\n"
      "run with a command and -h for details (see the header of\n"
      "tools/spnhbm_cli.cpp)\n",
      stderr);
  std::exit(2);
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  static Args parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (starts_with(token, "--")) {
        std::string value = "true";
        if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
          value = argv[++i];
        }
        args.options.emplace_back(token.substr(2), value);
      } else {
        args.positional.push_back(std::move(token));
      }
    }
    return args;
  }

  std::string option(const std::string& name,
                     const std::string& fallback) const {
    for (const auto& [key, value] : options) {
      if (key == name) return value;
    }
    return fallback;
  }
  /// Every value of a repeatable option, in command-line order.
  std::vector<std::string> option_all(const std::string& name) const {
    std::vector<std::string> values;
    for (const auto& [key, value] : options) {
      if (key == name) values.push_back(value);
    }
    return values;
  }
  bool flag(const std::string& name) const {
    for (const auto& [key, value] : options) {
      if (key == name) return value != "false";
    }
    return false;
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// "HOST:PORT" (numeric IPv4 host, loopback in practice).
std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    throw Error("expected HOST:PORT, got '" + spec + "'");
  }
  const long port = std::atol(spec.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    throw Error("port out of range in '" + spec + "'");
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
}

/// Handles --metrics-out / --trace-out. Tracing must be switched on before
/// the instrumented stack is constructed (tracks register only while the
/// tracer is enabled), so commands call enable_telemetry() first and
/// write_telemetry() after the run.
struct TelemetryOutputs {
  std::string metrics_path;
  std::string trace_path;

  static TelemetryOutputs from_args(const Args& args) {
    TelemetryOutputs outputs;
    outputs.metrics_path = args.option("metrics-out", "");
    outputs.trace_path = args.option("trace-out", "");
    if (!outputs.trace_path.empty()) telemetry::tracer().enable();
    return outputs;
  }

  void write() const {
    if (!metrics_path.empty()) {
      telemetry::metrics().write_json(metrics_path);
      std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      telemetry::tracer().write_chrome_trace(trace_path);
      std::fprintf(stderr, "trace written to %s (load in ui.perfetto.dev)\n",
                   trace_path.c_str());
    }
  }
};

/// --fault-plan FILE: arms the global injector for this process. Returns
/// true when a plan is active (chaos mode).
bool arm_fault_plan(const Args& args) {
  const std::string path = args.option("fault-plan", "");
  if (path.empty()) return false;
  const fault::FaultPlan plan = fault::FaultPlan::from_json_file(path);
  fault::injector().arm(plan);
  std::fprintf(stderr, "fault plan armed: %zu rule(s), seed %llu\n",
               plan.rules.size(), static_cast<unsigned long long>(plan.seed));
  return true;
}

void print_fault_summary() {
  std::printf("faults injected: %llu\n",
              static_cast<unsigned long long>(fault::injector().injected()));
  std::map<std::string, std::uint64_t> by_site;
  for (const auto& entry : fault::injector().log()) {
    by_site[entry.site + "/" + entry.instance + " " +
            fault::to_string(entry.kind)] += 1;
  }
  for (const auto& [label, count] : by_site) {
    std::printf("  %s x%llu\n", label.c_str(),
                static_cast<unsigned long long>(count));
  }
}

/// "--queries joint,marginal,mpe" -> query kinds, command-line order.
std::vector<compiler::QueryKind> parse_queries(const Args& args) {
  std::vector<compiler::QueryKind> kinds;
  for (const auto& name : split(args.option("queries", "joint"), ',')) {
    kinds.push_back(compiler::parse_query_kind(name));
  }
  if (kinds.empty()) throw Error("--queries needs at least one query kind");
  return kinds;
}

/// Compile options for one query kind. Non-joint datapaths reserve byte
/// 255 as the marginalised slot, so their input domain shrinks to 255.
compiler::CompileOptions compile_options_for(compiler::QueryKind query) {
  compiler::CompileOptions options;
  options.query = query;
  if (query != compiler::QueryKind::kJoint) {
    options.input_domain = compiler::kMissingByte;
  }
  return options;
}

/// One "--evidence 'x3=1,x17=0'" spec -> sorted {index, value} pairs
/// (the 'x' prefix on indices is optional).
std::vector<std::pair<std::uint16_t, std::uint8_t>> parse_evidence(
    const std::string& spec) {
  std::vector<std::pair<std::uint16_t, std::uint8_t>> pairs;
  for (const auto& item : split(spec, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw Error("--evidence expects index=value pairs, got '" + item + "'");
    }
    std::string index_text = item.substr(0, eq);
    if (index_text[0] == 'x' || index_text[0] == 'X') index_text.erase(0, 1);
    const long index = std::atol(index_text.c_str());
    const long value = std::atol(item.c_str() + eq + 1);
    if (index < 0 || index > 0xFFFF) {
      throw Error("--evidence index out of range in '" + item + "'");
    }
    if (value < 0 || value > 0xFF) {
      throw Error("--evidence value out of range in '" + item + "'");
    }
    pairs.emplace_back(static_cast<std::uint16_t>(index),
                       static_cast<std::uint8_t>(value));
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// All --evidence flags -> one sparse batch (one sample per flag).
compiler::SparseBatch evidence_batch(const std::vector<std::string>& specs,
                                     std::size_t features) {
  compiler::SparseBatch batch;
  batch.features = features;
  for (const auto& spec : specs) {
    std::vector<std::uint16_t> indices;
    std::vector<std::uint8_t> values;
    for (const auto& [index, value] : parse_evidence(spec)) {
      indices.push_back(index);
      values.push_back(value);
    }
    batch.add_sample(indices, values);
  }
  return batch;
}

std::unique_ptr<arith::ArithBackend> backend_for(const std::string& name) {
  if (name == "cfp") return arith::make_cfp_backend(arith::paper_cfp_format());
  if (name == "lns") return arith::make_lns_backend(arith::paper_lns_format());
  if (name == "posit") {
    return arith::make_posit_backend(arith::paper_posit_format());
  }
  if (name == "f64" || name == "float64") return arith::make_float64_backend();
  throw Error("unknown format '" + name + "' (cfp|lns|posit|f64)");
}

int cmd_compile(const Args& args) {
  if (args.positional.empty()) usage();
  const spn::Spn model = spn::parse_spn(read_file(args.positional[0]));
  const auto backend = backend_for(args.option("format", "cfp"));
  const auto module = compiler::compile_spn(model, *backend);
  std::printf("model:   %s\n", spn::compute_stats(model).describe().c_str());
  std::printf("format:  %s\n", backend->describe().c_str());
  std::printf("%s\n", module.report().c_str());
  const std::string out = args.option("out", "");
  if (!out.empty()) {
    compiler::save_design_file(module, out);
    std::printf("design artifact written to %s\n", out.c_str());
  }
  const std::string dot = args.option("dot", "");
  if (!dot.empty()) {
    std::ofstream dot_file(dot);
    dot_file << spn::to_dot(model);
    std::printf("graphviz rendering written to %s\n", dot.c_str());
  }
  return 0;
}

/// `resources --sweep`: the max routable PE count for every arithmetic
/// format on both platforms, plus what blocks the next PE — a resource
/// deficit row, or the platform's routing/channel cap.
int cmd_resources_sweep(const Args& args) {
  const spn::Spn model = spn::parse_spn(read_file(args.positional[0]));
  std::printf("  %-8s %-8s %8s   %s\n", "format", "platform", "max PEs",
              "next PE blocked by");
  for (const char* format_name : {"cfp", "lns", "posit", "f64"}) {
    const auto backend = backend_for(format_name);
    const auto module = compiler::compile_spn(model, *backend);
    for (const auto platform :
         {fpga::Platform::kHbmXupVvh, fpga::Platform::kF1}) {
      const bool f1 = platform == fpga::Platform::kF1;
      const int max_pes =
          fpga::max_placeable_pes(module, backend->kind(), platform);
      std::string blocker;
      fpga::DesignSpec next;
      next.platform = platform;
      next.pe_count = max_pes + 1;
      next.memory_controllers =
          f1 ? std::min(next.pe_count, fpga::cal::kF1MaxMemoryChannels) : 1;
      try {
        fpga::check_placement(module, backend->kind(), next);
        // Resources would fit one more PE; the platform's discrete cap
        // (F1 DDR channels / HBM routable replication) is the wall.
        blocker = f1 ? strformat("DDR channel limit (%d)",
                                 fpga::cal::kF1MaxMemoryChannels)
                     : strformat("routing cap (%d)", fpga::cal::kMaxRoutablePes);
      } catch (const fpga::PlacementDeficitError& e) {
        blocker = e.deficits().front().describe();
      } catch (const PlacementError& e) {
        blocker = e.what();
      }
      std::printf("  %-8s %-8s %8d   %s\n", format_name, f1 ? "f1" : "hbm",
                  max_pes, blocker.c_str());
    }
  }
  return 0;
}

int cmd_resources(const Args& args) {
  if (args.positional.empty()) usage();
  if (args.flag("sweep")) return cmd_resources_sweep(args);
  const spn::Spn model = spn::parse_spn(read_file(args.positional[0]));
  const auto backend = backend_for(args.option("format", "cfp"));
  const auto module = compiler::compile_spn(model, *backend);
  fpga::DesignSpec spec;
  spec.platform = args.option("platform", "hbm") == "f1"
                      ? fpga::Platform::kF1
                      : fpga::Platform::kHbmXupVvh;
  spec.pe_count = std::atoi(args.option("pes", "1").c_str());
  spec.memory_controllers =
      spec.platform == fpga::Platform::kF1
          ? std::min(spec.pe_count, fpga::cal::kF1MaxMemoryChannels)
          : 1;
  const auto pe = fpga::estimate_pe(module, backend->kind());
  const auto design = fpga::estimate_design(module, backend->kind(), spec);
  std::printf("per PE:  %s\n", pe.describe().c_str());
  std::printf("design:  %d PE(s) -> %s\n", spec.pe_count,
              design.describe().c_str());
  try {
    fpga::check_placement(module, backend->kind(), spec);
    std::printf("placement: OK\n");
  } catch (const fpga::PlacementDeficitError& e) {
    // Structured failure: one row per over-budget resource, so the
    // operator sees exactly which budget to shrink the design towards.
    std::printf("placement: FAILS\n");
    std::printf("  %-16s %12s %12s %12s\n", "resource", "required",
                "available", "deficit");
    for (const auto& deficit : e.deficits()) {
      std::printf("  %-16s %12.1f %12.1f %12.1f\n",
                  deficit.resource.c_str(), deficit.required,
                  deficit.available, deficit.deficit());
    }
  } catch (const PlacementError& e) {
    std::printf("placement: FAILS (%s)\n", e.what());
  }
  std::printf("max PEs on this platform: %d\n",
              fpga::max_placeable_pes(module, backend->kind(), spec.platform));
  return 0;
}

int cmd_simulate(const Args& args) {
  if (args.positional.empty()) usage();
  const TelemetryOutputs telemetry_outputs = TelemetryOutputs::from_args(args);
  const bool chaos = arm_fault_plan(args);
  const spn::Spn model = spn::parse_spn(read_file(args.positional[0]));
  const auto backend = backend_for(args.option("format", "cfp"));
  const auto module = compiler::compile_spn(model, *backend);

  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = std::atoi(args.option("pes", "1").c_str());
  composition.pcie_generation = std::atoi(args.option("pcie", "3").c_str());
  composition.compute_results = false;
  tapasco::Device device(runner, module, *backend, composition);

  runtime::RuntimeConfig config;
  config.threads_per_pe = std::atoi(args.option("threads", "1").c_str());
  config.include_transfers = !args.flag("no-transfers");
  runtime::InferenceRuntime rt(runner, device, module, config);
  const auto samples = static_cast<std::uint64_t>(
      std::atoll(args.option("samples", "4000000").c_str()));
  const auto stats = rt.run(samples);
  std::printf("%s\n", stats.describe().c_str());

  auto& registry = telemetry::metrics();
  registry.gauge("sim.virtual_seconds")->set(to_seconds(scheduler.now()));
  registry.gauge("sim.events_processed")
      ->set(static_cast<double>(scheduler.events_processed()));
  registry.gauge("sim.samples_per_second")->set(stats.samples_per_second);
  if (chaos) print_fault_summary();
  telemetry_outputs.write();
  return 0;
}

std::unique_ptr<engine::InferenceEngine> engine_for(const std::string& name,
                                                    engine::ModelHandle model,
                                                    int pe_count) {
  if (name == "fpga") {
    engine::FpgaEngineConfig config;
    config.pe_count = pe_count;
    return std::make_unique<engine::FpgaSimEngine>(std::move(model), config);
  }
  if (name == "cpu") {
    return std::make_unique<engine::CpuEngine>(std::move(model));
  }
  if (name == "gpu") {
    return std::make_unique<engine::GpuModelEngine>(std::move(model));
  }
  throw Error("unknown engine '" + name + "' (fpga|cpu|gpu)");
}

/// Loads one --tuning manifest file into a shareable handle.
std::shared_ptr<const model::TuningManifest> load_tuning_file(
    const std::string& path) {
  return std::make_shared<const model::TuningManifest>(
      model::TuningManifest::load(path));
}

/// Attaches `manifest` to the loaded query-kind variant it was minted
/// for; attach_tuning() then verifies the content hash, so a manifest
/// from different compiled bits is rejected before it can serve. Throws
/// TuningError when no served variant carries the manifest's query.
void attach_tuning_to_variants(
    const std::shared_ptr<const model::TuningManifest>& manifest,
    const std::vector<engine::ModelHandle>& variants) {
  for (const auto& variant : variants) {
    if (manifest->query ==
        compiler::query_kind_name(variant->module().query())) {
      variant->attach_tuning(manifest);
      return;
    }
  }
  throw model::TuningError("no served lane matches manifest query '" +
                           manifest->query + "'");
}

/// Splits a CSV's byte matrix into per-row request payloads.
std::vector<std::vector<std::uint8_t>> rows_as_payloads(
    const spn::DataMatrix& data) {
  const auto bytes = data.to_bytes();
  const std::size_t features = data.cols();
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    payloads.emplace_back(
        bytes.begin() + static_cast<std::ptrdiff_t>(i * features),
        bytes.begin() + static_cast<std::ptrdiff_t>((i + 1) * features));
  }
  return payloads;
}

/// `infer --connect`: one request carrying the whole CSV, so the output
/// is byte-identical to the local engine path (one probability per row).
/// Rides the self-healing client: a connection reset mid-request is
/// retried under the same idempotency key instead of failing the run.
int cmd_infer_remote(const Args& args) {
  const auto evidence_specs = args.option_all("evidence");
  if (args.positional.empty() && evidence_specs.empty()) usage();
  rpc::ResilientClientConfig client_config;
  std::tie(client_config.host, client_config.port) =
      parse_host_port(args.option("connect", ""));
  client_config.label = "infer";
  client_config.seed = static_cast<std::uint64_t>(
      std::atoll(args.option("seed", "42").c_str()));
  rpc::ResilientClient client(std::move(client_config));
  const rpc::ServerInfo info = client.server_info();
  if (info.models.empty()) {
    throw Error("server hosts no models");
  }
  const auto query =
      compiler::parse_query_kind(args.option("query", "joint"));
  std::string model = args.option("model", "");
  if (model.empty()) {
    // The first advertised lane, stripped of any query-kind suffix: the
    // query byte re-addresses it server-side.
    model = engine::split_lane_ref(info.models.front().id).first;
  }
  // The targeted lane is model + query suffix; all query kinds of one
  // model share the input width.
  const std::uint32_t features =
      info.input_features(model + engine::query_lane_suffix(query));
  const auto deadline_us = static_cast<std::uint64_t>(
      std::atoll(args.option("deadline-us", "0").c_str()));
  rpc::QueryOptions options;
  options.query_kind = static_cast<std::uint8_t>(query);

  std::vector<std::uint8_t> payload;
  if (!evidence_specs.empty()) {
    const compiler::SparseBatch batch = evidence_batch(evidence_specs, features);
    payload = compiler::encode_sparse(batch);
    options.encoding = rpc::kEncodingSparse;
    options.sample_count =
        static_cast<std::uint32_t>(batch.sample_count());
  } else {
    const spn::DataMatrix data = spn::load_csv_file(args.positional[0]);
    if (data.cols() != features) {
      throw Error(strformat("CSV rows have %zu cells, the model expects %u",
                            data.cols(), features));
    }
    payload = data.to_bytes();
    if (args.flag("sparse")) {
      // Re-encode as CSR sparse evidence against the query's default
      // byte (no-evidence for non-joint datapaths, zero for joint).
      const std::uint8_t missing = query == compiler::QueryKind::kJoint
                                       ? std::uint8_t{0}
                                       : compiler::kMissingByte;
      const std::vector<std::uint8_t> defaults(features, missing);
      const compiler::SparseBatch batch =
          compiler::sparse_from_dense(payload, features, defaults);
      payload = compiler::encode_sparse(batch);
      options.encoding = rpc::kEncodingSparse;
      options.sample_count =
          static_cast<std::uint32_t>(batch.sample_count());
    } else {
      options.sample_count = static_cast<std::uint32_t>(data.rows());
    }
  }
  for (const double p :
       client.infer(model, std::move(payload), deadline_us, options)) {
    std::printf("%.12e\n", p);
  }
  return 0;
}

int cmd_infer(const Args& args) {
  if (!args.option("connect", "").empty()) return cmd_infer_remote(args);
  const auto evidence_specs = args.option_all("evidence");
  if (args.positional.empty() ||
      (args.positional.size() < 2 && evidence_specs.empty())) {
    usage();
  }
  const auto query = compiler::parse_query_kind(args.option("query", "joint"));
  const auto artifact = model::ModelArtifact::load_file(
      "model", "1", args.positional[0],
      backend_for(args.option("format", "cfp")), compile_options_for(query));
  // --tuning: the engine composes with the manifest's block size and HBM
  // packing automatically once the artifact carries it; the PE count is
  // applied here, where a deficit still fails placement loudly.
  int pes = 1;
  const std::string tuning_path = args.option("tuning", "");
  if (!tuning_path.empty()) {
    const auto manifest = load_tuning_file(tuning_path);
    artifact->attach_tuning(manifest);
    pes = manifest->config.pe_count;
  }
  const auto engine = engine_for(args.option("engine", "fpga"), artifact, pes);

  if (!evidence_specs.empty()) {
    // Sparse evidence straight from the command line, one sample per
    // --evidence flag; unnamed variables read the model's default byte.
    const compiler::SparseBatch batch =
        evidence_batch(evidence_specs, artifact->input_features());
    const auto stream = compiler::encode_sparse(batch);
    for (const double p : engine->infer_sparse(stream, batch.sample_count())) {
      std::printf("%.12e\n", p);
    }
    return 0;
  }

  const spn::DataMatrix data = spn::load_csv_file(args.positional[1]);
  if (data.cols() != artifact->input_features()) {
    throw Error(strformat("CSV rows have %zu cells, the model expects %zu",
                          data.cols(), artifact->input_features()));
  }
  const auto samples = data.to_bytes();
  if (args.flag("sparse")) {
    const compiler::SparseBatch batch = compiler::sparse_from_dense(
        samples, artifact->input_features(),
        artifact->module().default_evidence());
    const auto stream = compiler::encode_sparse(batch);
    for (const double p : engine->infer_sparse(stream, batch.sample_count())) {
      std::printf("%.12e\n", p);
    }
    return 0;
  }
  for (const double p : engine->infer(samples)) {
    std::printf("%.12e\n", p);
  }
  return 0;
}

/// `spnhbm tune`: search the serving-configuration space for one model
/// with the simulator as cost model; see the file header for the flags.
int cmd_tune(const Args& args) {
  if (args.positional.empty()) usage();
  const auto query = compiler::parse_query_kind(args.option("query", "joint"));
  const auto artifact = model::ModelArtifact::load_file(
      "model", "1", args.positional[0],
      backend_for(args.option("format", "cfp")), compile_options_for(query));

  tune::TuneOptions options;
  options.workload.requests = static_cast<std::size_t>(
      std::atoll(args.option("requests", "48").c_str()));
  options.workload.mean_request_samples = static_cast<std::size_t>(
      std::atoll(args.option("request-samples", "4096").c_str()));
  options.workload.mean_interarrival_us = static_cast<std::uint64_t>(
      std::atoll(args.option("arrival-us", "200").c_str()));
  options.workload.sparse_fraction =
      std::strtod(args.option("sparse-fraction", "0").c_str(), nullptr);
  options.workload.sparse_density =
      std::strtod(args.option("sparse-density", "0.25").c_str(), nullptr);
  options.seed = static_cast<std::uint64_t>(
      std::atoll(args.option("seed", "0").c_str()));
  options.max_evaluations = static_cast<std::size_t>(
      std::atoll(args.option("budget", "48").c_str()));
  options.max_pe_count = std::atoi(args.option("pes", "0").c_str());
  options.platform = args.option("platform", "hbm") == "f1"
                         ? fpga::Platform::kF1
                         : fpga::Platform::kHbmXupVvh;

  const tune::TuneResult result = tune::tune(artifact, options);
  std::fputs(result.search_log.c_str(), stdout);
  std::printf("baseline: %s -> %s\n", result.baseline.describe().c_str(),
              result.baseline_score.describe().c_str());
  std::printf("tuned:    %s -> %s (%+.1f%%)\n", result.best.describe().c_str(),
              result.best_score.describe().c_str(),
              100.0 * (result.best_score.samples_per_second /
                           result.baseline_score.samples_per_second -
                       1.0));

  const std::string log_path = args.option("log", "");
  if (!log_path.empty()) {
    std::ofstream out(log_path);
    if (!out) throw Error("cannot write search log: " + log_path);
    out << result.search_log;
    std::printf("search log written to %s\n", log_path.c_str());
  }
  const std::string out_path = args.option("out", "");
  if (!out_path.empty()) {
    result.manifest(*artifact).save(out_path);
    std::printf("tuning manifest written to %s\n", out_path.c_str());
  }
  return 0;
}

engine::ServerConfig server_config_from_args(const Args& args) {
  engine::ServerConfig config;
  config.batch_samples = static_cast<std::size_t>(
      std::atoll(args.option("batch", "64").c_str()));
  config.max_latency = std::chrono::microseconds(
      std::atoll(args.option("max-latency-us", "500").c_str()));
  config.max_queue_samples = static_cast<std::size_t>(
      std::atoll(args.option("queue-bound", "65536").c_str()));
  const std::string policy = args.option("policy", "rr");
  if (policy != "rr" && policy != "load") {
    throw Error("unknown policy '" + policy + "' (rr|load)");
  }
  config.policy = policy == "load" ? engine::DispatchPolicy::kLeastLoaded
                                   : engine::DispatchPolicy::kRoundRobin;
  config.request_timeout = std::chrono::microseconds(
      std::atoll(args.option("request-timeout", "0").c_str()));
  return config;
}

/// Registers one engine per --engines entry ("name" or "name:prio") for
/// `model`, wrapped in the chaos decorator when a fault plan is armed.
void register_engines_for(engine::InferenceServer& server, const Args& args,
                          const engine::ModelHandle& model, bool chaos) {
  // An explicit --pes always wins; otherwise a model with an attached
  // tuning manifest gets its tuned PE count (composition still
  // deficit-checks it), and an untuned model keeps the old default of 1.
  const std::string pes_text = args.option("pes", "");
  int pes = pes_text.empty() ? 1 : std::atoi(pes_text.c_str());
  if (pes_text.empty()) {
    if (const auto tuning = model->tuning()) pes = tuning->config.pe_count;
  }
  for (const auto& spec : split(args.option("engines", "fpga,cpu"), ',')) {
    std::string name = spec;
    int priority = 0;
    if (const auto colon = spec.find(':'); colon != std::string::npos) {
      name = spec.substr(0, colon);
      priority = std::atoi(spec.c_str() + colon + 1);
    }
    auto engine = engine_for(name, model, pes);
    if (chaos) {
      engine = std::make_unique<engine::ChaosEngine>(std::move(engine));
    }
    server.register_engine(std::move(engine), priority);
  }
}

void print_server_report(const engine::InferenceServer& server,
                         const rpc::RpcServerStats* rpc_stats = nullptr) {
  const engine::ServerStats stats = server.stats();
  std::printf("server: %s\n", stats.describe().c_str());
  // Always printed, even when all counts are zero: these are exactly the
  // numbers an operator grep-checks after a run, and the engine stats
  // line above only mentions them when recovery machinery fired.
  std::printf("admission: %llu rejected, %llu deadline-exceeded, "
              "%llu failed\n",
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.deadline_expirations),
              static_cast<unsigned long long>(stats.failed_requests));
  if (rpc_stats != nullptr) {
    std::printf("rpc: %s\n", rpc_stats->describe().c_str());
  }
  for (std::size_t i = 0; i < server.engine_count(); ++i) {
    std::printf("engine %s [%s]: %s\n",
                server.engine(i).capabilities().name.c_str(),
                engine::to_string(server.engine_health(i)).c_str(),
                server.engine(i).stats().describe().c_str());
  }
}

// --- Remote serving front end ---------------------------------------------

volatile std::sig_atomic_t g_interrupted = 0;
void handle_signal(int) { g_interrupted = 1; }

/// Runs the TCP front end on an already-started InferenceService — a
/// local InferenceServer or a whole FleetRouter — until a client requests
/// shutdown or SIGINT/SIGTERM arrives; returns the final RPC statistics
/// (after the drain, so the conservation law is closed).
rpc::RpcServerStats run_rpc_front_end(engine::InferenceService& server,
                                      const Args& args) {
  rpc::RpcServerConfig config;
  config.port = static_cast<std::uint16_t>(
      std::atoi(args.option("listen", "0").c_str()));
  config.max_connections = static_cast<std::size_t>(
      std::atoll(args.option("max-connections", "64").c_str()));
  config.admission.rate_limit_rps =
      std::strtod(args.option("rate-limit", "0").c_str(), nullptr);
  config.admission.burst =
      std::strtod(args.option("burst", "0").c_str(), nullptr);
  config.admission.max_outstanding_samples = static_cast<std::size_t>(
      std::atoll(args.option("max-inflight-samples", "0").c_str()));
  rpc::RpcServer front(server, config);
  front.start();
  std::fprintf(stderr,
               "rpc: listening on 127.0.0.1:%u (build %s, protocol v%u)\n",
               static_cast<unsigned>(front.port()), kVersionString,
               static_cast<unsigned>(rpc::kProtocolVersion));
  const std::string port_file = args.option("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) throw Error("cannot write port file: " + port_file);
    out << front.port() << "\n";
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Poll instead of blocking in wait_for_shutdown_request() so a signal
  // can end the loop too.
  while (g_interrupted == 0 && !front.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::fprintf(stderr, "rpc: %s, draining\n",
               g_interrupted != 0 ? "signal received" : "shutdown requested");
  front.stop();
  return front.stats();
}

/// "--model name=path[@version]": the version suffix is only recognised
/// after the last path separator, so directories with '@' stay intact.
struct ModelSpec {
  std::string name;
  std::string version = "1";
  std::string path;

  static ModelSpec parse(const std::string& spec) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw Error("--model expects name=path[@version], got '" + spec + "'");
    }
    ModelSpec out;
    out.name = spec.substr(0, eq);
    std::string rest = spec.substr(eq + 1);
    const auto slash = rest.find_last_of('/');
    const auto at = rest.rfind('@');
    if (at != std::string::npos &&
        (slash == std::string::npos || at > slash)) {
      out.version = rest.substr(at + 1);
      rest.resize(at);
    }
    out.path = rest;
    return out;
  }
};

int cmd_serve_multi(const Args& args,
                    const std::vector<std::string>& model_specs) {
  const TelemetryOutputs telemetry_outputs = TelemetryOutputs::from_args(args);
  const bool chaos = arm_fault_plan(args);
  const auto format = args.option("format", "cfp");
  const auto queries = parse_queries(args);

  // One artifact (and one server lane) per model x query kind; the
  // registry holds the first-listed kind of each model — the variant
  // local CSV replays address by name.
  model::ModelRegistry registry;
  std::vector<engine::ModelHandle> loaded;
  std::map<std::string, std::vector<engine::ModelHandle>> variants_by_name;
  for (const auto& raw : model_specs) {
    const ModelSpec spec = ModelSpec::parse(raw);
    for (const auto query : queries) {
      const auto artifact = model::ModelArtifact::load_file(
          spec.name, spec.version, spec.path, backend_for(format),
          compile_options_for(query));
      if (query == queries.front()) registry.add(artifact);
      loaded.push_back(artifact);
      variants_by_name[spec.name].push_back(artifact);
      std::fprintf(stderr, "loaded %s (%s)\n", artifact->describe().c_str(),
                   compiler::query_kind_name(query));
    }
  }
  // "--tuning name=manifest.json": attach to that model's matching
  // query-kind variant before any engine composes against it.
  for (const auto& raw : args.option_all("tuning")) {
    const auto eq = raw.find('=');
    if (eq == std::string::npos) {
      throw Error("with --model, --tuning expects name=manifest.json");
    }
    const auto it = variants_by_name.find(raw.substr(0, eq));
    if (it == variants_by_name.end()) {
      throw Error("--tuning names unknown model '" + raw.substr(0, eq) + "'");
    }
    attach_tuning_to_variants(load_tuning_file(raw.substr(eq + 1)),
                              it->second);
  }

  engine::InferenceServer server(server_config_from_args(args));
  for (const auto& artifact : loaded) {
    register_engines_for(server, args, artifact, chaos);
  }
  server.start();

  if (!args.option("listen", "").empty()) {
    const rpc::RpcServerStats rpc_stats = run_rpc_front_end(server, args);
    server.stop();
    print_server_report(server, &rpc_stats);
    if (chaos) print_fault_summary();
    telemetry_outputs.write();
    return 0;
  }

  // Replay each --requests name=path CSV against its model; rows become
  // independent single-sample requests, so batches of different models
  // interleave through the one server.
  struct Replay {
    std::string id;
    std::size_t rows = 0;
    std::vector<std::future<std::vector<double>>> futures;
  };
  std::vector<Replay> replays;
  for (const auto& raw : args.option_all("requests")) {
    const auto eq = raw.find('=');
    if (eq == std::string::npos) {
      throw Error("with --model, --requests expects name=path");
    }
    const auto artifact = registry.get(raw.substr(0, eq));
    const spn::DataMatrix data = spn::load_csv_file(raw.substr(eq + 1));
    if (data.cols() != artifact->input_features()) {
      throw Error(strformat(
          "CSV rows have %zu cells, model %s expects %zu", data.cols(),
          artifact->id().c_str(), artifact->input_features()));
    }
    const auto samples = data.to_bytes();
    const std::size_t features = artifact->input_features();
    Replay replay;
    // Address the registry variant's own lane (suffixed for non-joint
    // first-listed query kinds).
    replay.id = engine::lane_id_for(artifact->id(), queries.front());
    replay.rows = samples.size() / features;
    for (std::size_t i = 0; i < replay.rows; ++i) {
      std::vector<std::uint8_t> row(
          samples.begin() + static_cast<std::ptrdiff_t>(i * features),
          samples.begin() + static_cast<std::ptrdiff_t>((i + 1) * features));
      replay.futures.push_back(server.submit(replay.id, std::move(row)));
    }
    replays.push_back(std::move(replay));
  }
  for (auto& replay : replays) {
    std::printf("== model %s (%zu requests)\n", replay.id.c_str(),
                replay.rows);
    for (auto& future : replay.futures) {
      try {
        std::printf("%.12e\n", future.get().front());
      } catch (const std::exception& e) {
        if (!chaos) throw;
        std::printf("error: %s\n", e.what());
      }
    }
  }
  server.stop();

  print_server_report(server);
  if (chaos) print_fault_summary();
  telemetry_outputs.write();
  return 0;
}

/// `serve --fleet-devices N`: N simulated cards behind one FleetRouter,
/// each --model deployed as --fleet-replicas spatial tenants, the whole
/// fleet exposed over the RPC wire. --rebalance-ms runs the
/// telemetry-driven rebalancer periodically while serving.
int cmd_serve_fleet(const Args& args,
                    const std::vector<std::string>& model_specs,
                    std::size_t devices) {
  const TelemetryOutputs telemetry_outputs = TelemetryOutputs::from_args(args);
  if (args.option("listen", "").empty()) {
    throw Error("--fleet-devices requires --listen (a fleet serves over RPC)");
  }
  const auto format = args.option("format", "cfp");
  const int replicas =
      std::max(1, std::atoi(args.option("fleet-replicas", "1").c_str()));
  const std::string pe_slots_text = args.option("fleet-pe-slots", "");
  const int pe_slots =
      std::max(1, pe_slots_text.empty() ? 1 : std::atoi(pe_slots_text.c_str()));

  fleet::FleetConfig config;
  config.devices = devices;
  config.server = server_config_from_args(args);
  config.default_pe_slots = pe_slots;
  fleet::FleetRouter router(config);
  const auto queries = parse_queries(args);
  std::map<std::string, std::vector<engine::ModelHandle>> variants_by_name;
  std::vector<engine::ModelHandle> deploy_order;
  for (const auto& raw : model_specs) {
    const ModelSpec spec = ModelSpec::parse(raw);
    for (const auto query : queries) {
      const auto artifact = model::ModelArtifact::load_file(
          spec.name, spec.version, spec.path, backend_for(format),
          compile_options_for(query));
      variants_by_name[spec.name].push_back(artifact);
      deploy_order.push_back(artifact);
    }
  }
  for (const auto& raw : args.option_all("tuning")) {
    const auto eq = raw.find('=');
    if (eq == std::string::npos) {
      throw Error("with --model, --tuning expects name=manifest.json");
    }
    const auto it = variants_by_name.find(raw.substr(0, eq));
    if (it == variants_by_name.end()) {
      throw Error("--tuning names unknown model '" + raw.substr(0, eq) + "'");
    }
    attach_tuning_to_variants(load_tuning_file(raw.substr(eq + 1)),
                              it->second);
  }
  for (const auto& artifact : deploy_order) {
    for (int r = 0; r < replicas; ++r) {
      // An explicit --fleet-pe-slots wins; otherwise deploy() sizes the
      // partition from the model's tuning manifest (deficit-checked by
      // the partition table) or the fleet default.
      const auto location =
          router.deploy(artifact, pe_slots_text.empty() ? 0 : pe_slots);
      std::fprintf(stderr, "deployed %s (%s) -> %s/%s\n",
                   artifact->id().c_str(),
                   compiler::query_kind_name(artifact->module().query()),
                   router.device(location.member).name().c_str(),
                   location.partition.c_str());
    }
  }
  router.start();

  // The rebalancer is control-plane; it may run concurrently with the
  // RPC data plane, but must be joined before stop().
  std::atomic<bool> quit{false};
  std::thread rebalancer;
  const long long rebalance_ms =
      std::atoll(args.option("rebalance-ms", "0").c_str());
  if (rebalance_ms > 0) {
    rebalancer = std::thread([&] {
      fleet::RebalancePolicy policy;
      policy.pe_slots = pe_slots;
      while (!quit.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(rebalance_ms));
        if (quit.load()) break;
        const fleet::RebalanceReport report = router.rebalance(policy);
        if (report.changed()) {
          std::fprintf(stderr, "fleet %s\n", report.describe().c_str());
        }
      }
    });
  }

  const rpc::RpcServerStats rpc_stats = run_rpc_front_end(router, args);
  quit.store(true);
  if (rebalancer.joinable()) rebalancer.join();
  router.stop();

  std::printf("%s", router.describe().c_str());
  std::printf("%s\n", router.stats().describe().c_str());
  std::printf("rpc: %s\n", rpc_stats.describe().c_str());
  for (std::size_t m = 0; m < router.member_count(); ++m) {
    std::printf("member %s: %s\n", router.device(m).name().c_str(),
                router.server(m).stats().describe().c_str());
  }
  telemetry_outputs.write();
  return 0;
}

int cmd_serve(const Args& args) {
  const auto model_specs = args.option_all("model");
  const auto fleet_devices = static_cast<std::size_t>(
      std::atoll(args.option("fleet-devices", "0").c_str()));
  if (fleet_devices > 0) {
    if (model_specs.empty()) {
      throw Error("--fleet-devices requires --model name=path specs");
    }
    return cmd_serve_fleet(args, model_specs, fleet_devices);
  }
  if (!model_specs.empty()) return cmd_serve_multi(args, model_specs);
  if (args.positional.empty()) usage();
  const TelemetryOutputs telemetry_outputs = TelemetryOutputs::from_args(args);
  const bool chaos = arm_fault_plan(args);
  const std::string requests_path = args.option("requests", "");
  const bool listen = !args.option("listen", "").empty();
  if (requests_path.empty() && !listen) usage();
  const auto queries = parse_queries(args);
  std::vector<engine::ModelHandle> artifacts;
  for (const auto query : queries) {
    artifacts.push_back(model::ModelArtifact::load_file(
        "model", "1", args.positional[0],
        backend_for(args.option("format", "cfp")),
        compile_options_for(query)));
  }
  for (const auto& spec : args.option_all("tuning")) {
    attach_tuning_to_variants(load_tuning_file(spec), artifacts);
  }
  const auto& artifact = artifacts.front();

  const long long timeout_us =
      std::atoll(args.option("request-timeout", "0").c_str());
  engine::InferenceServer server(server_config_from_args(args));
  for (const auto& variant : artifacts) {
    register_engines_for(server, args, variant, chaos);
  }
  server.start();

  if (listen) {
    const rpc::RpcServerStats rpc_stats = run_rpc_front_end(server, args);
    server.stop();
    print_server_report(server, &rpc_stats);
    if (chaos) print_fault_summary();
    telemetry_outputs.write();
    return 0;
  }

  const spn::DataMatrix data = spn::load_csv_file(requests_path);
  if (data.cols() != artifact->input_features()) {
    throw Error(strformat("CSV rows have %zu cells, the model expects %zu",
                          data.cols(), artifact->input_features()));
  }
  const auto samples = data.to_bytes();
  const std::size_t features = artifact->input_features();
  const std::size_t count = samples.size() / features;

  // Replay: every CSV row is one independent request against the
  // first-listed query's lane. Under chaos, a fail-fast
  // NoHealthyEngineError is handled the way a real client would: back
  // off and resubmit until a probe readmits an engine.
  const std::string replay_lane =
      engine::lane_id_for(artifact->id(), queries.front());
  const bool soft_errors = chaos || timeout_us > 0;
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> row(
        samples.begin() + static_cast<std::ptrdiff_t>(i * features),
        samples.begin() + static_cast<std::ptrdiff_t>((i + 1) * features));
    for (int backoff = 0;; ++backoff) {
      try {
        futures.push_back(server.submit(replay_lane, std::move(row)));
        break;
      } catch (const engine::NoHealthyEngineError& e) {
        if (!soft_errors || backoff >= 2000) throw;
        if (backoff == 0) {
          std::fprintf(stderr, "serve: %s (backing off)\n", e.what());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  for (auto& future : futures) {
    try {
      std::printf("%.12e\n", future.get().front());
    } catch (const std::exception& e) {
      if (!soft_errors) throw;
      std::printf("error: %s\n", e.what());
    }
  }
  server.stop();

  print_server_report(server);
  if (chaos) print_fault_summary();
  telemetry_outputs.write();
  return 0;
}

/// Loadgen "--model name[:weight]" entries plus "--requests [name=]path"
/// entries -> a weighted ModelTraffic mix. A pathless --requests CSV is
/// the shared fallback payload source for models without their own.
std::vector<rpc::ModelTraffic> parse_traffic_mix(const Args& args) {
  const auto model_specs = args.option_all("model");
  std::map<std::string, std::string> csv_by_model;
  std::string shared_csv;
  for (const auto& raw : args.option_all("requests")) {
    const auto eq = raw.find('=');
    if (eq == std::string::npos) {
      shared_csv = raw;
    } else {
      csv_by_model[raw.substr(0, eq)] = raw.substr(eq + 1);
    }
  }
  std::vector<rpc::ModelTraffic> mix;
  for (const auto& spec : model_specs) {
    rpc::ModelTraffic traffic;
    traffic.model = spec;
    // "name[:weight]" — model refs ("name@version") never contain ':'.
    if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
      traffic.model = spec.substr(0, colon);
      traffic.weight = std::strtod(spec.c_str() + colon + 1, nullptr);
      if (traffic.weight <= 0.0) {
        throw Error("--model " + spec + ": weight must be positive");
      }
    }
    const auto it = csv_by_model.find(traffic.model);
    const std::string path = it != csv_by_model.end() ? it->second
                                                      : shared_csv;
    if (path.empty()) {
      throw Error("no --requests CSV for model '" + traffic.model + "'");
    }
    traffic.payloads = rows_as_payloads(spn::load_csv_file(path));
    mix.push_back(std::move(traffic));
  }
  return mix;
}

int cmd_loadgen(const Args& args) {
  const TelemetryOutputs telemetry_outputs = TelemetryOutputs::from_args(args);
  if (args.option_all("requests").empty()) usage();

  rpc::LoadgenConfig config;
  std::tie(config.host, config.port) =
      parse_host_port(args.option("connect", ""));
  const auto model_specs = args.option_all("model");
  std::size_t default_count = 0;
  if (model_specs.size() > 1 ||
      (model_specs.size() == 1 &&
       model_specs[0].rfind(':') != std::string::npos)) {
    // Mixed-model traffic: every request draws its model from the
    // weighted mix; per-model payloads cycle independently.
    config.traffic = parse_traffic_mix(args);
    for (const auto& traffic : config.traffic) {
      default_count += traffic.payloads.size();
    }
  } else {
    config.model = args.option("model", "");
    config.payloads =
        rows_as_payloads(spn::load_csv_file(args.option("requests", "")));
    default_count = config.payloads.size();
  }
  // --query / --sparse apply to every request of the run (payloads are
  // single CSV rows, so the explicit sample count is always 1).
  const auto query = compiler::parse_query_kind(args.option("query", "joint"));
  rpc::QueryOptions query_options;
  query_options.query_kind = static_cast<std::uint8_t>(query);
  if (query != compiler::QueryKind::kJoint || args.flag("sparse")) {
    query_options.sample_count = 1;
  }
  if (args.flag("sparse")) {
    query_options.encoding = rpc::kEncodingSparse;
    const std::uint8_t missing = query == compiler::QueryKind::kJoint
                                     ? std::uint8_t{0}
                                     : compiler::kMissingByte;
    const auto sparsify = [&](std::vector<std::vector<std::uint8_t>>& rows) {
      for (auto& row : rows) {
        const std::vector<std::uint8_t> defaults(row.size(), missing);
        row = compiler::encode_sparse(
            compiler::sparse_from_dense(row, row.size(), defaults));
      }
    };
    sparsify(config.payloads);
    for (auto& traffic : config.traffic) sparsify(traffic.payloads);
  }
  config.query = query_options;
  for (auto& traffic : config.traffic) traffic.query = query_options;
  config.request_count = static_cast<std::size_t>(std::atoll(
      args.option("count", std::to_string(default_count)).c_str()));
  config.rate_rps = std::strtod(args.option("rate", "1000").c_str(), nullptr);
  config.arrival =
      rpc::parse_arrival_process(args.option("arrival", "poisson"));
  config.burst_size = static_cast<std::size_t>(
      std::atoll(args.option("burst", "8").c_str()));
  config.connections = static_cast<std::size_t>(
      std::atoll(args.option("connections", "1").c_str()));
  config.seed = static_cast<std::uint64_t>(
      std::atoll(args.option("seed", "42").c_str()));
  config.deadline_us = static_cast<std::uint64_t>(
      std::atoll(args.option("deadline-us", "0").c_str()));
  config.shutdown_server_after = args.flag("shutdown");
  config.max_attempts = std::atoi(args.option("max-attempts", "1").c_str());
  config.retry_budget_us =
      std::strtod(args.option("retry-budget-us", "0").c_str(), nullptr);
  // 1-in-N head sampling for the trace contexts minted by the clients
  // (effective only with --trace-out; otherwise no context is minted).
  telemetry::head_sampler().set_period(static_cast<std::uint64_t>(
      std::atoll(args.option("trace-sample", "1").c_str())));
  const double max_failure_rate =
      std::strtod(args.option("max-failure-rate", "1.0").c_str(), nullptr);

  const rpc::LoadgenReport report = rpc::run_loadgen(config);
  std::printf("%s", report.describe().c_str());
  const std::string report_path = args.option("report-out", "");
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) throw Error("cannot open report output file: " + report_path);
    out << report.bench_json() << "\n";
    std::fprintf(stderr, "loadgen report written to %s\n",
                 report_path.c_str());
  }
  telemetry_outputs.write();
  if (!report.conserved()) return 1;
  // A run whose failed fraction exceeds the gate is a failed run, even
  // though its books balance: a fully-failing loadgen must not exit 0
  // once the caller set a threshold.
  if (report.failure_fraction() > max_failure_rate) {
    std::fprintf(stderr,
                 "loadgen: failure fraction %.3f exceeds --max-failure-rate "
                 "%.3f\n",
                 report.failure_fraction(), max_failure_rate);
    return 1;
  }
  return 0;
}

/// `spnhbm soak`: the self-contained chaos soak harness; see the usage
/// block at the top of this file.
int cmd_soak(const Args& args) {
  const TelemetryOutputs telemetry_outputs = TelemetryOutputs::from_args(args);
  const auto model_specs = args.option_all("model");
  if (model_specs.empty()) {
    throw Error("soak requires at least one --model name=path spec");
  }
  const bool chaos = arm_fault_plan(args);
  if (chaos && args.flag("disarm")) {
    // Plan parsed and reported, but the injector stays cold: this run
    // must be byte-identical (stdout) to one with no plan at all.
    fault::injector().disarm();
    std::fprintf(stderr, "fault plan disarmed (--disarm)\n");
  }

  // --requests name=csv per model, with a pathless --requests CSV as the
  // shared fallback (same convention as loadgen's traffic mix).
  std::map<std::string, std::string> csv_by_model;
  std::string shared_csv;
  for (const auto& raw : args.option_all("requests")) {
    const auto eq = raw.find('=');
    if (eq == std::string::npos) {
      shared_csv = raw;
    } else {
      csv_by_model[raw.substr(0, eq)] = raw.substr(eq + 1);
    }
  }

  soak::SoakConfig config;
  config.seed = static_cast<std::uint64_t>(
      std::atoll(args.option("seed", "42").c_str()));
  config.minutes = std::strtod(args.option("minutes", "2").c_str(), nullptr);
  config.devices = static_cast<std::size_t>(
      std::atoll(args.option("devices", "2").c_str()));
  config.replicas = static_cast<std::size_t>(
      std::atoll(args.option("replicas", "2").c_str()));
  config.clients = static_cast<std::size_t>(
      std::atoll(args.option("clients", "2").c_str()));
  config.wave_requests = static_cast<std::size_t>(
      std::atoll(args.option("wave-requests", "8").c_str()));
  config.swaps_per_wave = static_cast<std::size_t>(
      std::atoll(args.option("swaps-per-wave", "4").c_str()));
  config.rebalance_every = static_cast<std::size_t>(
      std::atoll(args.option("rebalance-every", "3").c_str()));
  config.convergence_wall_seconds = std::strtod(
      args.option("convergence-seconds", "30").c_str(), nullptr);

  const auto format = args.option("format", "cfp");
  for (const auto& raw : model_specs) {
    const ModelSpec spec = ModelSpec::parse(raw);
    soak::SoakModel entry;
    entry.model = model::ModelArtifact::load_file(
        spec.name, spec.version, spec.path, backend_for(format));
    const auto it = csv_by_model.find(spec.name);
    const std::string csv =
        it != csv_by_model.end() ? it->second : shared_csv;
    if (csv.empty()) {
      throw Error("no --requests CSV for soak model '" + spec.name + "'");
    }
    entry.payloads = rows_as_payloads(spn::load_csv_file(csv));
    std::fprintf(stderr, "loaded %s (%zu payloads)\n",
                 entry.model->describe().c_str(), entry.payloads.size());
    config.models.push_back(std::move(entry));
  }

  const soak::SoakReport report = soak::run_soak(config);
  std::printf("%s", report.describe().c_str());
  std::fprintf(stderr, "%s", report.detail().c_str());
  if (chaos) {
    std::fprintf(stderr, "faults injected: %llu\n",
                 static_cast<unsigned long long>(
                     fault::injector().injected()));
  }
  const std::string report_path = args.option("report-out", "");
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) throw Error("cannot open report output file: " + report_path);
    out << report.bench_json() << "\n";
    std::fprintf(stderr, "soak report written to %s\n", report_path.c_str());
  }
  telemetry_outputs.write();
  return report.passed() ? 0 : 1;
}

/// One ADMIN round-trip on an established connection.
rpc::AdminReplyFrame fetch_admin(rpc::Socket& socket) {
  const std::vector<std::uint8_t> wire =
      rpc::encode_frame(rpc::encode_admin());
  socket.send_all(wire.data(), wire.size());
  std::uint8_t header[rpc::kFrameHeaderBytes];
  if (!socket.recv_exact(header, sizeof(header))) {
    throw Error("server closed the admin connection");
  }
  rpc::FrameType type;
  const std::uint32_t body_length = rpc::decode_frame_header(header, type);
  std::vector<std::uint8_t> body(body_length);
  if (body_length > 0 && !socket.recv_exact(body.data(), body_length)) {
    throw Error("server closed mid-frame");
  }
  if (type != rpc::FrameType::kAdminReply) {
    throw Error("expected an admin reply, got frame type " +
                std::to_string(static_cast<unsigned>(type)));
  }
  return rpc::decode_admin_reply(body);
}

/// Prometheus exposition -> {metric name, value}; bucket lines (labels)
/// and comments are skipped.
std::map<std::string, double> parse_exposition(const std::string& text) {
  std::map<std::string, double> values;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find('{') != std::string::npos) continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) continue;
    values[line.substr(0, space)] =
        std::strtod(line.c_str() + space + 1, nullptr);
  }
  return values;
}

int cmd_top(const Args& args) {
  const auto [host, port] = parse_host_port(args.option("connect", ""));
  const std::size_t polls =
      args.flag("once") ? 1
                        : static_cast<std::size_t>(std::atoll(
                              args.option("count", "0").c_str()));
  const auto interval = std::chrono::milliseconds(
      std::atoll(args.option("interval-ms", "1000").c_str()));

  rpc::Socket socket = rpc::Socket::connect(host, port);
  // Consume the hello that opens every connection.
  std::uint8_t header[rpc::kFrameHeaderBytes];
  if (!socket.recv_exact(header, sizeof(header))) {
    throw Error("server closed the connection before the handshake");
  }
  rpc::FrameType type;
  const std::uint32_t body_length = rpc::decode_frame_header(header, type);
  if (type != rpc::FrameType::kHello) {
    throw Error("expected a hello frame, got type " +
                std::to_string(static_cast<unsigned>(type)));
  }
  std::vector<std::uint8_t> body(body_length);
  if (body_length > 0 && !socket.recv_exact(body.data(), body_length)) {
    throw Error("server closed the connection mid-handshake");
  }
  const rpc::HelloFrame hello = rpc::decode_hello(body);
  if (hello.protocol_version < rpc::kTraceProtocolVersion) {
    throw Error(strformat("server speaks protocol v%u, which has no ADMIN "
                          "frames (needs v%u+)",
                          hello.protocol_version,
                          rpc::kTraceProtocolVersion));
  }

  std::map<std::string, double> previous;
  auto previous_time = std::chrono::steady_clock::now();
  for (std::size_t poll = 0; polls == 0 || poll < polls; ++poll) {
    if (poll > 0) std::this_thread::sleep_for(interval);
    const rpc::AdminReplyFrame reply = fetch_admin(socket);
    const auto now = std::chrono::steady_clock::now();
    const std::map<std::string, double> values =
        parse_exposition(reply.metrics_text);
    const auto metric = [&](const std::string& name) {
      const auto it = values.find(name);
      return it == values.end() ? 0.0 : it->second;
    };
    const auto delta = [&](const std::string& name) {
      const auto it = previous.find(name);
      return it == previous.end() ? metric(name) : metric(name) - it->second;
    };
    const double dt =
        std::chrono::duration<double>(now - previous_time).count();

    std::printf("spnhbm top — %s:%u (server %s, wire v%u)  poll %zu\n",
                host.c_str(), static_cast<unsigned>(port),
                reply.build_version.c_str(),
                static_cast<unsigned>(reply.protocol_version), poll + 1);
    std::printf(
        "requests  received=%.0f accepted=%.0f completed=%.0f failed=%.0f "
        "rejected=%.0f\n",
        metric("spnhbm_rpc_requests"), metric("spnhbm_rpc_accepted"),
        metric("spnhbm_rpc_completed"), metric("spnhbm_rpc_failed"),
        metric("spnhbm_rpc_rejected"));
    if (poll > 0 && dt > 0.0) {
      const double completed = delta("spnhbm_rpc_completed");
      const double latency_count =
          delta("spnhbm_rpc_request_latency_us_count");
      const double latency_sum = delta("spnhbm_rpc_request_latency_us_sum");
      std::printf("interval  %.1f req/s completed, mean latency %.1f us "
                  "(over %.1fs)\n",
                  completed / dt,
                  latency_count > 0.0 ? latency_sum / latency_count : 0.0,
                  dt);
    }
    const auto print_section = [](const char* title,
                                  const std::string& text) {
      if (text.empty()) return;
      std::printf("%s\n", title);
      std::istringstream lines(text);
      std::string line;
      while (std::getline(lines, line)) {
        std::printf("  %s\n", line.c_str());
      }
    };
    print_section("engines", reply.health_text);
    print_section("replicas", reply.replicas_text);
    print_section("slowest traced requests", reply.tail_text);
    std::printf("\n");
    std::fflush(stdout);
    previous = values;
    previous_time = now;
  }
  return 0;
}

int cmd_version() {
  std::printf("spnhbm %s (wire protocol v%u)\n", kVersionString,
              static_cast<unsigned>(rpc::kProtocolVersion));
  return 0;
}

int cmd_learn(const Args& args) {
  if (args.positional.empty()) usage();
  const spn::DataMatrix data = spn::load_csv_file(args.positional[0]);
  spn::LearnOptions options;
  options.min_instances = static_cast<std::size_t>(
      std::atoll(args.option("min-instances", "64").c_str()));
  options.independence_threshold =
      std::strtod(args.option("threshold", "0.15").c_str(), nullptr);
  const spn::Spn learned = spn::learn_spn(data, options);
  std::printf("%s\n", spn::to_text(learned, /*indent=*/true).c_str());
  return 0;
}

int cmd_sample(const Args& args) {
  if (args.positional.empty()) usage();
  const spn::Spn model = spn::parse_spn(read_file(args.positional[0]));
  Rng rng(static_cast<std::uint64_t>(
      std::atoll(args.option("seed", "1").c_str())));
  const auto count = static_cast<std::size_t>(
      std::atoll(args.option("count", "10").c_str()));
  for (const auto& sample : spn::sample_batch(model, rng, count)) {
    for (std::size_t v = 0; v < sample.size(); ++v) {
      std::printf("%s%.6g", v == 0 ? "" : ",", sample[v]);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (command == "compile") return cmd_compile(args);
    if (command == "resources") return cmd_resources(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "infer") return cmd_infer(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "tune") return cmd_tune(args);
    if (command == "loadgen") return cmd_loadgen(args);
    if (command == "soak") return cmd_soak(args);
    if (command == "top") return cmd_top(args);
    if (command == "version" || command == "--version") return cmd_version();
    if (command == "learn") return cmd_learn(args);
    if (command == "sample") return cmd_sample(args);
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spnhbm %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
