#include "spnhbm/spn/discretise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/spn/dot_export.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/validate.hpp"

namespace spnhbm::spn {
namespace {

/// The paper's Fig. 1 situation: an SPN with Gaussian leaves that must be
/// approximated with histograms before hardware mapping.
Spn gaussian_spn() {
  Spn spn;
  const auto g0a = spn.add_gaussian(0, 60.0, 15.0);
  const auto g1a = spn.add_gaussian(1, 80.0, 20.0);
  const auto g0b = spn.add_gaussian(0, 180.0, 25.0);
  const auto g1b = spn.add_gaussian(1, 150.0, 10.0);
  const auto pa = spn.add_product({g0a, g1a});
  const auto pb = spn.add_product({g0b, g1b});
  spn.set_root(spn.add_sum({pa, pb}, {0.45, 0.55}));
  return spn;
}

TEST(Discretise, GaussianCdf) {
  EXPECT_NEAR(gaussian_cdf(0.0, 0.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(gaussian_cdf(1.96, 0.0, 1.0), 0.975, 1e-3);
  EXPECT_NEAR(gaussian_cdf(-1.96, 0.0, 1.0), 0.025, 1e-3);
}

TEST(Discretise, ReplacesEveryGaussian) {
  const Spn mixed = discretise_gaussians(gaussian_spn());
  const auto stats = compute_stats(mixed);
  EXPECT_EQ(stats.gaussian_leaves, 0u);
  EXPECT_EQ(stats.histogram_leaves, 4u);
  EXPECT_EQ(stats.sum_nodes, 1u);
  EXPECT_EQ(stats.product_nodes, 2u);
  EXPECT_TRUE(validate(mixed).empty());
}

TEST(Discretise, PreservesDensityShape) {
  const Spn original = gaussian_spn();
  DiscretiseOptions options;
  options.buckets = 64;
  const Spn mixed = discretise_gaussians(original, options);
  Evaluator exact(original);
  Evaluator approx(mixed);
  // At bucket centres (width 4 for 64 buckets over [0,256)) the
  // bucket-mass average closely matches the point density; at bucket
  // edges it deliberately does not (piecewise-constant approximation).
  for (double v0 = 14.0; v0 < 250.0; v0 += 16.0) {
    const double sample[] = {v0, 102.0};  // both at bucket centres
    const double want = exact.evaluate(sample);
    const double got = approx.evaluate(sample);
    if (want > 1e-7) {
      EXPECT_NEAR(got / want, 1.0, 0.15) << "v0=" << v0;
    }
  }
}

TEST(Discretise, MoreBucketsAreMoreAccurate) {
  const Spn original = gaussian_spn();
  Evaluator exact(original);
  const auto mean_error = [&](std::size_t buckets) {
    DiscretiseOptions options;
    options.buckets = buckets;
    const Spn mixed = discretise_gaussians(original, options);
    Evaluator approx(mixed);
    double total = 0.0;
    int counted = 0;
    for (double v0 = 20.0; v0 < 240.0; v0 += 8.0) {
      for (double v1 = 60.0; v1 < 180.0; v1 += 8.0) {
        const double sample[] = {v0, v1};
        const double want = exact.evaluate(sample);
        if (want < 1e-10) continue;
        total += std::fabs(approx.evaluate(sample) - want) / want;
        ++counted;
      }
    }
    return total / counted;
  };
  EXPECT_LT(mean_error(128), mean_error(16));
}

TEST(Discretise, ResultCompilesToHardware) {
  const Spn mixed = discretise_gaussians(gaussian_spn());
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(mixed, *backend);
  EXPECT_EQ(module.input_features(), 2u);
  // Functional check through the datapath.
  Evaluator reference(mixed);
  const std::uint8_t sample[] = {60, 80};
  const double want = reference.evaluate_bytes(sample);
  EXPECT_NEAR(module.evaluate(*backend, sample) / want, 1.0, 1e-4);
}

TEST(Discretise, MassStaysNormalised) {
  DiscretiseOptions options;
  options.buckets = 32;
  const Spn mixed = discretise_gaussians(gaussian_spn(), options);
  // validate() already checks leaf normalisation; assert it explicitly.
  EXPECT_TRUE(validate(mixed).empty());
}

TEST(Discretise, FloorKeepsTailsPositive) {
  Spn spn;
  spn.set_root(spn.add_gaussian(0, 128.0, 1.0));  // very narrow
  const Spn mixed = discretise_gaussians(spn);
  Evaluator evaluator(mixed);
  const double tail[] = {3.0};
  EXPECT_GT(evaluator.evaluate(tail), 0.0);
}

TEST(Discretise, RejectsBadOptions) {
  DiscretiseOptions options;
  options.buckets = 1;
  EXPECT_THROW(discretise_gaussians(gaussian_spn(), options),
               std::logic_error);
}

TEST(DotExport, EmitsAllNodeShapes) {
  const std::string dot = to_dot(gaussian_spn());
  EXPECT_NE(dot.find("digraph spn"), std::string::npos);
  EXPECT_NE(dot.find("label=\"+\""), std::string::npos);
  EXPECT_NE(dot.find("N(60, 15)"), std::string::npos);
  const std::string mixed_dot = to_dot(discretise_gaussians(gaussian_spn()));
  EXPECT_NE(mixed_dot.find("hist["), std::string::npos);
}

}  // namespace
}  // namespace spnhbm::spn
