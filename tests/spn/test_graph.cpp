#include "spnhbm/spn/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace spnhbm::spn {
namespace {

/// Two-variable mixture used by several tests.
Spn small_spn() {
  Spn spn;
  const auto h0a = spn.add_histogram(0, {0, 1, 2}, {0.25, 0.75});
  const auto h1a = spn.add_histogram(1, {0, 1, 2}, {0.5, 0.5});
  const auto h0b = spn.add_histogram(0, {0, 1, 2}, {0.9, 0.1});
  const auto h1b = spn.add_histogram(1, {0, 1, 2}, {0.2, 0.8});
  const auto p_a = spn.add_product({h0a, h1a});
  const auto p_b = spn.add_product({h0b, h1b});
  const auto root = spn.add_sum({p_a, p_b}, {0.3, 0.7});
  spn.set_root(root);
  return spn;
}

TEST(Graph, BuilderAssignsSequentialIds) {
  Spn spn;
  EXPECT_EQ(spn.add_histogram(0, {0, 1}, {1.0}), 0u);
  EXPECT_EQ(spn.add_gaussian(1, 0.0, 1.0), 1u);
  EXPECT_EQ(spn.add_categorical(2, {0.5, 0.5}), 2u);
  EXPECT_EQ(spn.add_product({0, 1, 2}), 3u);
  EXPECT_EQ(spn.node_count(), 4u);
}

TEST(Graph, ChildrenMustExist) {
  Spn spn;
  EXPECT_THROW(spn.add_product({5}), std::logic_error);
  EXPECT_THROW(spn.add_sum({0}, {1.0}), std::logic_error);
}

TEST(Graph, SumNeedsMatchingWeights) {
  Spn spn;
  spn.add_histogram(0, {0, 1}, {1.0});
  EXPECT_THROW(spn.add_sum({0}, {0.5, 0.5}), std::logic_error);
}

TEST(Graph, HistogramShapeChecks) {
  Spn spn;
  EXPECT_THROW(spn.add_histogram(0, {0}, {}), std::logic_error);
  EXPECT_THROW(spn.add_histogram(0, {0, 1}, {1.0, 2.0}), std::logic_error);
  EXPECT_THROW(spn.add_histogram(0, {1, 0}, {1.0}), std::logic_error);
}

TEST(Graph, GaussianNeedsPositiveStddev) {
  Spn spn;
  EXPECT_THROW(spn.add_gaussian(0, 0.0, 0.0), std::logic_error);
  EXPECT_THROW(spn.add_gaussian(0, 0.0, -1.0), std::logic_error);
}

TEST(Graph, RootMustExist) {
  Spn spn;
  EXPECT_THROW(spn.set_root(0), std::logic_error);
  EXPECT_FALSE(spn.has_root());
}

TEST(Graph, NodeKinds) {
  const Spn spn = small_spn();
  EXPECT_EQ(spn.kind(0), NodeKind::kHistogram);
  EXPECT_EQ(spn.kind(4), NodeKind::kProduct);
  EXPECT_EQ(spn.kind(6), NodeKind::kSum);
  EXPECT_STREQ(node_kind_name(NodeKind::kSum), "sum");
}

TEST(Graph, VariableCount) {
  const Spn spn = small_spn();
  EXPECT_EQ(spn.variable_count(), 2u);
}

TEST(Graph, ScopesAreSortedAndMerged) {
  const Spn spn = small_spn();
  const auto scopes = spn.compute_scopes();
  EXPECT_EQ(scopes[0], (std::vector<VariableId>{0}));
  EXPECT_EQ(scopes[4], (std::vector<VariableId>{0, 1}));
  EXPECT_EQ(scopes[6], (std::vector<VariableId>{0, 1}));
}

TEST(Graph, ReachableTopologicalIsChildrenFirst) {
  const Spn spn = small_spn();
  const auto order = spn.reachable_topological();
  EXPECT_EQ(order.size(), 7u);
  std::vector<bool> seen(spn.node_count(), false);
  for (const NodeId id : order) {
    const auto& payload = spn.node(id);
    if (const auto* sum = std::get_if<SumNode>(&payload)) {
      for (const NodeId child : sum->children) EXPECT_TRUE(seen[child]);
    } else if (const auto* product = std::get_if<ProductNode>(&payload)) {
      for (const NodeId child : product->children) EXPECT_TRUE(seen[child]);
    }
    seen[id] = true;
  }
}

TEST(Graph, ReachableSkipsOrphans) {
  Spn spn;
  spn.add_histogram(0, {0, 1}, {1.0});          // orphan
  const auto used = spn.add_histogram(0, {0, 1}, {1.0});
  spn.set_root(used);
  EXPECT_EQ(spn.reachable_topological(), (std::vector<NodeId>{used}));
}

TEST(Graph, StatsCountEverything) {
  const Spn spn = small_spn();
  const auto stats = compute_stats(spn);
  EXPECT_EQ(stats.sum_nodes, 1u);
  EXPECT_EQ(stats.product_nodes, 2u);
  EXPECT_EQ(stats.histogram_leaves, 4u);
  EXPECT_EQ(stats.total_nodes(), 7u);
  EXPECT_EQ(stats.edges, 6u);
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.variables, 2u);
  EXPECT_EQ(stats.histogram_buckets, 8u);
  EXPECT_FALSE(stats.describe().empty());
}

}  // namespace
}  // namespace spnhbm::spn
