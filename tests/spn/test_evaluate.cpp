#include "spnhbm/spn/evaluate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/spn/validate.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::spn {
namespace {

Spn mixture_spn() {
  Spn spn;
  const auto h0a = spn.add_histogram(0, {0, 1, 2}, {0.25, 0.75});
  const auto h1a = spn.add_histogram(1, {0, 1, 2}, {0.5, 0.5});
  const auto h0b = spn.add_histogram(0, {0, 1, 2}, {0.9, 0.1});
  const auto h1b = spn.add_histogram(1, {0, 1, 2}, {0.2, 0.8});
  const auto p_a = spn.add_product({h0a, h1a});
  const auto p_b = spn.add_product({h0b, h1b});
  spn.set_root(spn.add_sum({p_a, p_b}, {0.3, 0.7}));
  return spn;
}

TEST(LeafDensity, HistogramLookup) {
  const NodePayload leaf = HistogramLeaf{0, {0, 1, 2, 4}, {0.1, 0.3, 0.15}};
  EXPECT_DOUBLE_EQ(leaf_density(leaf, 0.5), 0.1);
  EXPECT_DOUBLE_EQ(leaf_density(leaf, 1.0), 0.3);
  EXPECT_DOUBLE_EQ(leaf_density(leaf, 3.99), 0.15);
  EXPECT_DOUBLE_EQ(leaf_density(leaf, 4.0), 0.0);   // right edge exclusive
  EXPECT_DOUBLE_EQ(leaf_density(leaf, -0.1), 0.0);  // out of support
}

TEST(LeafDensity, GaussianPdf) {
  const NodePayload leaf = GaussianLeaf{0, 1.0, 2.0};
  const double at_mean = leaf_density(leaf, 1.0);
  EXPECT_NEAR(at_mean, 1.0 / (2.0 * std::sqrt(2.0 * M_PI)), 1e-12);
  EXPECT_LT(leaf_density(leaf, 5.0), at_mean);
}

TEST(LeafDensity, CategoricalMass) {
  const NodePayload leaf = CategoricalLeaf{0, {0.2, 0.3, 0.5}};
  EXPECT_DOUBLE_EQ(leaf_density(leaf, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(leaf_density(leaf, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(leaf_density(leaf, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(leaf_density(leaf, 1.5), 0.0);  // non-integer
  EXPECT_DOUBLE_EQ(leaf_density(leaf, -1.0), 0.0);
}

TEST(LeafDensity, MissingValueMarginalises) {
  const NodePayload leaf = HistogramLeaf{0, {0, 1}, {1.0}};
  EXPECT_DOUBLE_EQ(leaf_density(leaf, missing_value()), 1.0);
}

TEST(Evaluate, MixtureByHand) {
  Spn spn = mixture_spn();
  Evaluator evaluator(spn);
  // Sample (0, 1): component A = 0.25*0.5, component B = 0.9*0.8.
  const double want = 0.3 * (0.25 * 0.5) + 0.7 * (0.9 * 0.8);
  const double sample[] = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(evaluator.evaluate(sample), want);
}

TEST(Evaluate, LogDomainMatchesLinear) {
  Spn spn = mixture_spn();
  Evaluator evaluator(spn);
  const double sample[] = {1.0, 0.0};
  EXPECT_NEAR(evaluator.evaluate_log(sample),
              std::log(evaluator.evaluate(sample)), 1e-12);
}

TEST(Evaluate, BytesPathMatchesDoublePath) {
  Spn spn = mixture_spn();
  Evaluator evaluator(spn);
  const std::uint8_t bytes[] = {1, 1};
  const double doubles[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(evaluator.evaluate_bytes(bytes),
                   evaluator.evaluate(doubles));
}

TEST(Evaluate, MarginalisationDropsVariable) {
  Spn spn = mixture_spn();
  Evaluator evaluator(spn);
  // Marginalising V1 must yield the V0 marginal: histograms over V1
  // integrate to 1 inside each component.
  const double sample[] = {0.0, missing_value()};
  const double want = 0.3 * 0.25 + 0.7 * 0.9;
  EXPECT_DOUBLE_EQ(evaluator.evaluate(sample), want);
}

TEST(Evaluate, FullMarginalIsOne) {
  Spn spn = mixture_spn();
  Evaluator evaluator(spn);
  const double sample[] = {missing_value(), missing_value()};
  EXPECT_DOUBLE_EQ(evaluator.evaluate(sample), 1.0);
}

TEST(Evaluate, BatchMatchesScalar) {
  Spn spn = mixture_spn();
  Evaluator evaluator(spn);
  const std::vector<double> rows{0, 0, 0, 1, 1, 0, 1, 1};
  std::vector<double> results(4);
  evaluator.evaluate_batch(rows, 2, results);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(results[r],
                     evaluator.evaluate(std::span(rows).subspan(r * 2, 2)));
  }
}

TEST(Evaluate, RejectsNarrowSamples) {
  Spn spn = mixture_spn();
  Evaluator evaluator(spn);
  const double sample[] = {0.0};
  EXPECT_THROW(evaluator.evaluate(sample), std::logic_error);
}

// Property: over a random SPN, summing the joint over the full discrete
// domain must give ~1 (the SPN is a normalised distribution), and the
// log-domain evaluation must agree with the linear one.
class RandomSpnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSpnProperty, NormalisedAndLogConsistent) {
  RandomSpnConfig config;
  config.variables = 3;
  config.leaf_domain = 4;   // small domain so we can integrate exhaustively
  config.histogram_buckets = 4;
  config.seed = GetParam();
  const Spn spn = make_random_spn(config);
  validate_or_throw(spn);

  Evaluator evaluator(spn);
  double total = 0.0;
  double sample[3];
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        sample[0] = a;
        sample[1] = b;
        sample[2] = c;
        const double p = evaluator.evaluate(sample);
        EXPECT_GE(p, 0.0);
        if (p > 0.0) {
          EXPECT_NEAR(evaluator.evaluate_log(sample), std::log(p),
                      1e-9 * std::fabs(std::log(p)) + 1e-12);
        }
        total += p;
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpnProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: marginalising one variable at a time never increases the
// probability (it integrates it out).
TEST(Evaluate, MarginalMonotonicity) {
  RandomSpnConfig config;
  config.variables = 5;
  config.leaf_domain = 256;
  config.seed = 99;
  const Spn spn = make_random_spn(config);
  Evaluator evaluator(spn);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> sample(5);
    for (auto& v : sample) v = static_cast<double>(rng.next_below(256));
    const double joint = evaluator.evaluate(sample);
    for (int v = 0; v < 5; ++v) {
      auto marginal_sample = sample;
      marginal_sample[v] = missing_value();
      EXPECT_GE(evaluator.evaluate(marginal_sample), joint - 1e-15);
    }
  }
}

}  // namespace
}  // namespace spnhbm::spn
