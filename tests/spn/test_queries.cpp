#include "spnhbm/spn/queries.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/spn/text_format.hpp"
#include "spnhbm/spn/validate.hpp"

namespace spnhbm::spn {
namespace {

/// Mixture where component A prefers small V0/V1 values and B large ones.
Spn bimodal_spn() {
  return parse_spn(R"(
    Sum(0.4*Product(Histogram(V0|[0,128,256];[0.0070,0.0008125])
                  * Histogram(V1|[0,128,256];[0.0070,0.0008125]))
      + 0.6*Product(Histogram(V0|[0,128,256];[0.0008125,0.0070])
                  * Histogram(V1|[0,128,256];[0.0008125,0.0070])))
  )");
}

TEST(Conditional, MatchesBayesByHand) {
  Spn spn = bimodal_spn();
  Evaluator evaluator(spn);
  // P(V1 in high half | V0 = 200): component B dominates given V0 high.
  const double query[] = {200.0, 200.0};
  const double evidence[] = {200.0, missing_value()};
  const double log_conditional =
      conditional_probability(evaluator, query, evidence);
  // By hand: P(v0=200) = .4*.0008125 + .6*.0070; joint adds the V1 factor.
  const double p_e = 0.4 * 0.0008125 + 0.6 * 0.0070;
  const double p_qe = 0.4 * 0.0008125 * 0.0008125 + 0.6 * 0.0070 * 0.0070;
  EXPECT_NEAR(log_conditional, std::log(p_qe / p_e), 1e-12);
}

TEST(Conditional, LogSpaceSurvivesWideModels) {
  // 40 independent low-density leaves: the linear-space joint underflows
  // well past what a ratio of two evaluate() calls can represent reliably,
  // but the log-space conditional stays finite and exact.
  Spn spn;
  std::vector<NodeId> leaves;
  for (VariableId v = 0; v < 40; ++v) {
    leaves.push_back(spn.add_histogram(v, {0.0, 256.0}, {1e-12}));
  }
  spn.set_root(spn.add_product(leaves));
  Evaluator evaluator(spn);
  std::vector<double> query(40, 1.0);
  std::vector<double> evidence(40, missing_value());
  evidence[0] = 1.0;
  const double log_conditional =
      conditional_probability(evaluator, query, evidence);
  // P(query)/P(evidence) leaves the 39 extra leaves: 39 * log(1e-12).
  EXPECT_NEAR(log_conditional, 39.0 * std::log(1e-12), 1e-9);
}

TEST(Conditional, ConditioningSharpensPrediction) {
  Spn spn = bimodal_spn();
  Evaluator evaluator(spn);
  const double q_free[] = {missing_value(), 200.0};
  const double e_free[] = {missing_value(), missing_value()};
  const double prior = conditional_probability(evaluator, q_free, e_free);
  const double q_cond[] = {200.0, 200.0};
  const double e_cond[] = {200.0, missing_value()};
  const double posterior = conditional_probability(evaluator, q_cond, e_cond);
  // Observing a high V0 makes a high V1 more likely (positive coupling).
  EXPECT_GT(posterior, prior);
}

TEST(Conditional, RejectsInconsistentQuery) {
  Spn spn = bimodal_spn();
  Evaluator evaluator(spn);
  const double query[] = {10.0, 20.0};
  const double evidence[] = {11.0, missing_value()};
  EXPECT_THROW(conditional_probability(evaluator, query, evidence),
               std::logic_error);
}

TEST(Mpe, CompletesTowardTheLikelyComponent) {
  Spn spn = bimodal_spn();
  // V0 observed high -> component B -> V1 completed in the high half.
  std::vector<double> evidence{200.0, missing_value()};
  const auto high = mpe_completion(spn, evidence);
  EXPECT_DOUBLE_EQ(high[0], 200.0);  // observed values pass through
  EXPECT_GE(high[1], 128.0);
  // V0 observed low -> component A -> V1 completed in the low half.
  evidence = {30.0, missing_value()};
  const auto low = mpe_completion(spn, evidence);
  EXPECT_LT(low[1], 128.0);
}

TEST(Mpe, FullEvidenceIsIdentity) {
  Spn spn = bimodal_spn();
  const std::vector<double> evidence{42.0, 77.0};
  EXPECT_EQ(mpe_completion(spn, evidence), evidence);
}

TEST(Mpe, CompletionHasMaximalProbabilityAmongBuckets) {
  // The MPE completion must score at least as high as any other bucket
  // centre completion (exhaustive check over the small domain).
  Spn spn = bimodal_spn();
  Evaluator evaluator(spn);
  const std::vector<double> evidence{200.0, missing_value()};
  const auto completion = mpe_completion(spn, evidence);
  const double best = evaluator.evaluate(completion);
  for (const double candidate : {64.0, 192.0}) {
    const std::vector<double> alternative{200.0, candidate};
    EXPECT_GE(best, evaluator.evaluate(alternative) - 1e-15);
  }
}

TEST(Mpe, MaxProductValueMatchesHand) {
  Spn spn = bimodal_spn();
  // Fully observed: max-product == plain product at the leaves, but sums
  // take the best weighted component rather than mixing.
  const std::vector<double> observed{200.0, 200.0};
  const double expect_b = 0.6 * 0.0070 * 0.0070;  // component B dominates
  EXPECT_DOUBLE_EQ(max_product_value(spn, observed, 256), expect_b);
  // V1 missing: its leaf contributes the best byte's density (the high
  // bucket under component B, the low bucket under component A).
  const std::vector<double> partial{200.0, missing_value()};
  EXPECT_DOUBLE_EQ(max_product_value(spn, partial, 256), expect_b);
}

TEST(Mpe, MaxProductValueTracksTheWinningComponent) {
  // Low V0 flips the winner to component A; the value is that branch's
  // weighted contribution (max-product keeps one sub-circuit, it does not
  // mix like evaluate() does).
  Spn spn = bimodal_spn();
  const std::vector<double> evidence{30.0, missing_value()};
  EXPECT_DOUBLE_EQ(max_product_value(spn, evidence, 256),
                   0.4 * 0.0070 * 0.0070);
}

TEST(Mpe, GaussianLeafCompletesWithMean) {
  Spn spn;
  spn.set_root(spn.add_gaussian(0, 3.5, 1.0));
  const std::vector<double> evidence{missing_value()};
  EXPECT_DOUBLE_EQ(mpe_completion(spn, evidence)[0], 3.5);
}

TEST(Mpe, CategoricalLeafCompletesWithArgmax) {
  Spn spn;
  spn.set_root(spn.add_categorical(0, {0.2, 0.5, 0.3}));
  const std::vector<double> evidence{missing_value()};
  EXPECT_DOUBLE_EQ(mpe_completion(spn, evidence)[0], 1.0);
}

TEST(Sampling, SamplesRespectSupport) {
  RandomSpnConfig config;
  config.variables = 4;
  config.seed = 5;
  const Spn spn = make_random_spn(config);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto s = sample(spn, rng);
    ASSERT_EQ(s.size(), 4u);
    for (const double v : s) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 256.0);
    }
  }
}

TEST(Sampling, EmpiricalMarginalTracksModelMarginal) {
  // Statistical oracle: the empirical frequency of V0 < 128 must match the
  // model marginal P(V0 < 128) computed by integration.
  Spn spn = bimodal_spn();
  Evaluator evaluator(spn);
  // P(V0 < 128) = integral over the low half with V1 marginalised.
  const double low_query[] = {64.0, missing_value()};
  const double p_low_density = evaluator.evaluate(low_query);  // density
  const double p_low = p_low_density * 128.0;  // uniform within bucket

  Rng rng(13);
  int below = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (sample(spn, rng)[0] < 128.0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, p_low, 0.01);
}

TEST(Sampling, BatchProducesDistinctSamples) {
  Spn spn = bimodal_spn();
  Rng rng(17);
  const auto batch = sample_batch(spn, rng, 32);
  ASSERT_EQ(batch.size(), 32u);
  bool any_diff = false;
  for (std::size_t i = 1; i < batch.size(); ++i) {
    if (batch[i] != batch[0]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Sampling, DeterministicInRngState) {
  Spn spn = bimodal_spn();
  Rng a(21), b(21);
  EXPECT_EQ(sample(spn, a), sample(spn, b));
}

}  // namespace
}  // namespace spnhbm::spn
