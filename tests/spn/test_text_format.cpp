#include "spnhbm/spn/text_format.hpp"

#include <gtest/gtest.h>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/spn/validate.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::spn {
namespace {

TEST(TextFormat, ParsesHistogramLeaf) {
  const Spn spn = parse_spn("Histogram(V3|[0,1,2];[0.25,0.75])");
  EXPECT_EQ(spn.node_count(), 1u);
  const auto& leaf = std::get<HistogramLeaf>(spn.node(spn.root()));
  EXPECT_EQ(leaf.variable, 3u);
  EXPECT_EQ(leaf.breaks, (std::vector<double>{0, 1, 2}));
  EXPECT_EQ(leaf.densities, (std::vector<double>{0.25, 0.75}));
}

TEST(TextFormat, ParsesGaussianAndCategorical) {
  const Spn g = parse_spn("Gaussian(V1|0.5;1.25)");
  const auto& gaussian = std::get<GaussianLeaf>(g.node(g.root()));
  EXPECT_DOUBLE_EQ(gaussian.mean, 0.5);
  EXPECT_DOUBLE_EQ(gaussian.stddev, 1.25);

  const Spn c = parse_spn("Categorical(V2|[0.2,0.8])");
  const auto& categorical = std::get<CategoricalLeaf>(c.node(c.root()));
  EXPECT_EQ(categorical.probabilities, (std::vector<double>{0.2, 0.8}));
}

TEST(TextFormat, ParsesNestedStructureWithWhitespace) {
  const Spn spn = parse_spn(R"(
    Sum( 0.3 * Product( Histogram(V0|[0,1,2];[0.25,0.75])
                      * Histogram(V1|[0,1,2];[0.5,0.5]) )
       + 0.7 * Product( Histogram(V0|[0,1,2];[0.9,0.1])
                      * Histogram(V1|[0,1,2];[0.2,0.8]) ) )
  )");
  EXPECT_EQ(spn.node_count(), 7u);
  EXPECT_TRUE(validate(spn).empty());
  Evaluator evaluator(spn);
  const double sample[] = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(evaluator.evaluate(sample),
                   0.3 * (0.25 * 0.5) + 0.7 * (0.9 * 0.8));
}

TEST(TextFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_spn(""), ParseError);
  EXPECT_THROW(parse_spn("Blob(V0|[0,1];[1])"), ParseError);
  EXPECT_THROW(parse_spn("Histogram(V0|[0,1];[1]) trailing"), ParseError);
  EXPECT_THROW(parse_spn("Histogram(V0|[0,1];[1,2])"), ParseError);
  EXPECT_THROW(parse_spn("Histogram(X0|[0,1];[1])"), ParseError);
  EXPECT_THROW(parse_spn("Sum()"), ParseError);
  EXPECT_THROW(parse_spn("Sum(0.5*Histogram(V0|[0,1];[1])"), ParseError);
  EXPECT_THROW(parse_spn("Gaussian(V0|1;0)"), ParseError);
  EXPECT_THROW(parse_spn("Sum(*Histogram(V0|[0,1];[1]))"), ParseError);
}

TEST(TextFormat, ErrorsIncludeOffset) {
  try {
    parse_spn("Sum(0.5*Nope)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(TextFormat, RoundTripPreservesStructureAndSemantics) {
  RandomSpnConfig config;
  config.variables = 8;
  config.seed = 4711;
  const Spn original = make_random_spn(config);
  const std::string text = to_text(original);
  const Spn reparsed = parse_spn(text);

  EXPECT_TRUE(validate(reparsed).empty());
  Evaluator eval_original(original);
  Evaluator eval_reparsed(reparsed);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> sample(8);
    for (auto& v : sample) v = static_cast<double>(rng.next_below(256));
    EXPECT_DOUBLE_EQ(eval_original.evaluate(sample),
                     eval_reparsed.evaluate(sample));
  }
}

TEST(TextFormat, SerialisationIsStable) {
  RandomSpnConfig config;
  config.variables = 4;
  config.seed = 7;
  const Spn spn = make_random_spn(config);
  const std::string once = to_text(spn);
  const std::string twice = to_text(parse_spn(once));
  EXPECT_EQ(once, twice);
}

TEST(TextFormat, IndentedOutputParsesBack) {
  RandomSpnConfig config;
  config.variables = 4;
  config.seed = 11;
  const Spn spn = make_random_spn(config);
  const std::string pretty = to_text(spn, /*indent=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NO_THROW(parse_spn(pretty));
}

TEST(TextFormat, NumbersRoundTripExactly) {
  // 1/3 has no short decimal representation; the printer must still emit a
  // string that parses back to the identical double.
  Spn spn;
  spn.set_root(spn.add_histogram(0, {0.0, 1.0 / 3.0, 1.0},
                                 {1.5, 3.0 - 2.0 * (1.0 / 3.0) * 1.5 /
                                            (1.0 - 1.0 / 3.0) * 0.5}));
  ValidationOptions lax;
  lax.require_normalised_leaves = false;
  const Spn reparsed = parse_spn(to_text(spn));
  const auto& a = std::get<HistogramLeaf>(spn.node(0));
  const auto& b = std::get<HistogramLeaf>(reparsed.node(0));
  EXPECT_EQ(a.breaks, b.breaks);
  EXPECT_EQ(a.densities, b.densities);
}

}  // namespace
}  // namespace spnhbm::spn
