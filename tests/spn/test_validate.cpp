#include "spnhbm/spn/validate.hpp"

#include <gtest/gtest.h>

#include "spnhbm/spn/random_spn.hpp"

namespace spnhbm::spn {
namespace {

TEST(Validate, AcceptsWellFormedMixture) {
  Spn spn;
  const auto h0a = spn.add_histogram(0, {0, 2}, {0.5});
  const auto h1a = spn.add_histogram(1, {0, 2}, {0.5});
  const auto h0b = spn.add_histogram(0, {0, 2}, {0.5});
  const auto h1b = spn.add_histogram(1, {0, 2}, {0.5});
  const auto pa = spn.add_product({h0a, h1a});
  const auto pb = spn.add_product({h0b, h1b});
  spn.set_root(spn.add_sum({pa, pb}, {0.4, 0.6}));
  EXPECT_TRUE(validate(spn).empty());
  EXPECT_NO_THROW(validate_or_throw(spn));
}

TEST(Validate, DetectsMissingRoot) {
  Spn spn;
  spn.add_histogram(0, {0, 1}, {1.0});
  const auto violations = validate(spn);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("no root"), std::string::npos);
}

TEST(Validate, DetectsIncompleteSum) {
  Spn spn;
  const auto h0 = spn.add_histogram(0, {0, 1}, {1.0});
  const auto h1 = spn.add_histogram(1, {0, 1}, {1.0});
  spn.set_root(spn.add_sum({h0, h1}, {0.5, 0.5}));  // different scopes!
  const auto violations = validate(spn);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("completeness"), std::string::npos);
  EXPECT_THROW(validate_or_throw(spn), ValidationError);
}

TEST(Validate, DetectsNonDecomposableProduct) {
  Spn spn;
  const auto h0a = spn.add_histogram(0, {0, 1}, {1.0});
  const auto h0b = spn.add_histogram(0, {0, 1}, {1.0});  // same variable!
  spn.set_root(spn.add_product({h0a, h0b}));
  const auto violations = validate(spn);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("decomposability"), std::string::npos);
}

TEST(Validate, DetectsUnnormalisedWeights) {
  Spn spn;
  const auto h0a = spn.add_histogram(0, {0, 1}, {1.0});
  const auto h0b = spn.add_histogram(0, {0, 1}, {1.0});
  spn.set_root(spn.add_sum({h0a, h0b}, {0.5, 0.6}));
  const auto violations = validate(spn);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("sum to"), std::string::npos);
}

TEST(Validate, DetectsNonPositiveWeight) {
  Spn spn;
  const auto h0a = spn.add_histogram(0, {0, 1}, {1.0});
  const auto h0b = spn.add_histogram(0, {0, 1}, {1.0});
  spn.set_root(spn.add_sum({h0a, h0b}, {1.0, -0.0000001}));
  const auto violations = validate(spn);
  EXPECT_FALSE(violations.empty());
}

TEST(Validate, DetectsUnnormalisedHistogram) {
  Spn spn;
  spn.set_root(spn.add_histogram(0, {0, 1, 2}, {0.9, 0.9}));
  const auto violations = validate(spn);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("integrates"), std::string::npos);

  ValidationOptions lax;
  lax.require_normalised_leaves = false;
  EXPECT_TRUE(validate(spn, lax).empty());
}

TEST(Validate, DetectsUnnormalisedCategorical) {
  Spn spn;
  spn.set_root(spn.add_categorical(0, {0.5, 0.2}));
  EXPECT_FALSE(validate(spn).empty());
}

TEST(Validate, WeightToleranceIsConfigurable) {
  Spn spn;
  const auto h0a = spn.add_histogram(0, {0, 1}, {1.0});
  const auto h0b = spn.add_histogram(0, {0, 1}, {1.0});
  spn.set_root(spn.add_sum({h0a, h0b}, {0.5, 0.5001}));
  EXPECT_FALSE(validate(spn).empty());
  ValidationOptions lax;
  lax.weight_tolerance = 1e-3;
  EXPECT_TRUE(validate(spn, lax).empty());
}

TEST(Validate, RandomSpnsAreValidAcrossSizes) {
  for (const std::size_t variables : {1u, 2u, 5u, 10u, 40u, 80u}) {
    RandomSpnConfig config;
    config.variables = variables;
    config.seed = 42 + variables;
    EXPECT_NO_THROW(validate_or_throw(make_random_spn(config)))
        << "variables=" << variables;
  }
}

TEST(Validate, IgnoresUnreachableGarbage) {
  Spn spn;
  const auto bad_a = spn.add_histogram(0, {0, 1}, {1.0});
  const auto bad_b = spn.add_histogram(0, {0, 1}, {1.0});
  spn.add_product({bad_a, bad_b});  // non-decomposable, but orphaned
  spn.set_root(spn.add_histogram(1, {0, 1}, {1.0}));
  EXPECT_TRUE(validate(spn).empty());
}

}  // namespace
}  // namespace spnhbm::spn
