#include "spnhbm/spn/io_csv.hpp"

#include <gtest/gtest.h>

namespace spnhbm::spn {
namespace {

TEST(IoCsv, ParsesSimpleMatrix) {
  const DataMatrix data = parse_csv("1,2,3\n4,5,6\n");
  EXPECT_EQ(data.rows(), 2u);
  EXPECT_EQ(data.cols(), 3u);
  EXPECT_DOUBLE_EQ(data.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(data.at(1, 2), 6.0);
}

TEST(IoCsv, SkipsEmptyLinesAndTrimsWhitespace) {
  const DataMatrix data = parse_csv("\n 1 , 2 \n\n 3 ,4 \n\n");
  EXPECT_EQ(data.rows(), 2u);
  EXPECT_DOUBLE_EQ(data.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(data.at(1, 0), 3.0);
}

TEST(IoCsv, ParsesDecimalsAndNegatives) {
  const DataMatrix data = parse_csv("-1.5,2.25e2\n0.125,-0\n");
  EXPECT_DOUBLE_EQ(data.at(0, 0), -1.5);
  EXPECT_DOUBLE_EQ(data.at(0, 1), 225.0);
  EXPECT_DOUBLE_EQ(data.at(1, 0), 0.125);
}

TEST(IoCsv, RejectsRaggedInput) {
  EXPECT_THROW(parse_csv("1,2\n3\n"), ParseError);
}

TEST(IoCsv, RejectsNonNumericCells) {
  try {
    parse_csv("1,2\n3,abc\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

TEST(IoCsv, RejectsEmptyInput) {
  EXPECT_THROW(parse_csv(""), ParseError);
  EXPECT_THROW(parse_csv("\n\n"), ParseError);
}

TEST(IoCsv, RoundTripsThroughText) {
  DataMatrix data(2, 2);
  data.set(0, 0, 1.5);
  data.set(0, 1, 200.0);
  data.set(1, 0, 0.0);
  data.set(1, 1, 42.0);
  const DataMatrix reparsed = parse_csv(to_csv(data));
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(reparsed.at(r, c), data.at(r, c));
    }
  }
}

TEST(IoCsv, FileRoundTrip) {
  DataMatrix data(1, 3);
  data.set(0, 0, 7.0);
  data.set(0, 1, 8.0);
  data.set(0, 2, 9.0);
  const std::string path = "/tmp/spnhbm_test_data.csv";
  save_csv_file(data, path);
  const DataMatrix loaded = load_csv_file(path);
  EXPECT_EQ(loaded.rows(), 1u);
  EXPECT_DOUBLE_EQ(loaded.at(0, 2), 9.0);
}

TEST(IoCsv, MissingFileThrows) {
  EXPECT_THROW(load_csv_file("/nonexistent/file.csv"), Error);
}

}  // namespace
}  // namespace spnhbm::spn
