#include "spnhbm/spn/learn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/validate.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::spn {
namespace {

/// Dataset with two independent groups: {0,1} correlated, {2} independent.
DataMatrix grouped_data(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  DataMatrix data(rows, 3);
  for (std::size_t r = 0; r < rows; ++r) {
    const double base = static_cast<double>(rng.next_below(128));
    data.set(r, 0, base);
    data.set(r, 1, std::min(255.0, base + static_cast<double>(rng.next_below(8))));
    data.set(r, 2, static_cast<double>(rng.next_below(256)));
  }
  return data;
}

/// Bimodal dataset: two clearly separated clusters over both variables.
DataMatrix clustered_data(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  DataMatrix data(rows, 2);
  for (std::size_t r = 0; r < rows; ++r) {
    const bool high = (r % 2) == 0;
    const double center = high ? 200.0 : 40.0;
    data.set(r, 0, center + static_cast<double>(rng.next_below(16)));
    data.set(r, 1, center + static_cast<double>(rng.next_below(16)));
  }
  return data;
}

TEST(Learn, ProducesValidSpn) {
  const auto data = grouped_data(512, 1);
  const Spn spn = learn_spn(data);
  EXPECT_NO_THROW(validate_or_throw(spn));
  EXPECT_EQ(spn.variable_count(), 3u);
}

TEST(Learn, SingleVariableYieldsLeaf) {
  Rng rng(3);
  DataMatrix data(256, 1);
  for (std::size_t r = 0; r < 256; ++r) {
    data.set(r, 0, static_cast<double>(rng.next_below(256)));
  }
  const Spn spn = learn_spn(data);
  EXPECT_EQ(spn.kind(spn.root()), NodeKind::kHistogram);
}

TEST(Learn, IndependentGroupSplitsIntoProduct) {
  const auto data = grouped_data(2048, 5);
  LearnOptions options;
  options.independence_threshold = 0.3;
  const Spn spn = learn_spn(data, options);
  // Variable 2 is independent of {0,1}: the root must be a product.
  EXPECT_EQ(spn.kind(spn.root()), NodeKind::kProduct);
}

TEST(Learn, CorrelatedBimodalDataYieldsSum) {
  const auto data = clustered_data(2048, 7);
  LearnOptions options;
  options.independence_threshold = 0.3;
  const Spn spn = learn_spn(data, options);
  // Both variables move together across two clusters: root must be a sum.
  EXPECT_EQ(spn.kind(spn.root()), NodeKind::kSum);
}

TEST(Learn, ModelAssignsHigherLikelihoodToInDistributionData) {
  const auto train = clustered_data(2048, 11);
  const Spn spn = learn_spn(train);
  Evaluator evaluator(spn);

  // In-distribution: near a cluster centre. Out-of-distribution: far away.
  const double in_sample[] = {205.0, 206.0};
  const double out_sample[] = {120.0, 10.0};
  EXPECT_GT(evaluator.evaluate(in_sample), evaluator.evaluate(out_sample));
}

TEST(Learn, SmoothingAvoidsZeroDensities) {
  // All training mass in one spot; smoothing keeps other buckets nonzero.
  DataMatrix data(128, 1);
  for (std::size_t r = 0; r < 128; ++r) data.set(r, 0, 10.0);
  const Spn spn = learn_spn(data);
  Evaluator evaluator(spn);
  const double far_away[] = {250.0};
  EXPECT_GT(evaluator.evaluate(far_away), 0.0);
}

TEST(Learn, DeterministicInSeed) {
  const auto data = grouped_data(1024, 13);
  LearnOptions options;
  options.seed = 99;
  const Spn a = learn_spn(data, options);
  const Spn b = learn_spn(data, options);
  EXPECT_EQ(a.node_count(), b.node_count());
  Evaluator ea(a), eb(b);
  const double sample[] = {64.0, 66.0, 128.0};
  EXPECT_DOUBLE_EQ(ea.evaluate(sample), eb.evaluate(sample));
}

TEST(Learn, MinInstancesControlsGranularity) {
  const auto data = clustered_data(4096, 17);
  LearnOptions coarse;
  coarse.min_instances = 8192;  // more than the dataset: never cluster
  LearnOptions fine;
  fine.min_instances = 64;
  const Spn coarse_spn = learn_spn(data, coarse);
  const Spn fine_spn = learn_spn(data, fine);
  EXPECT_GT(fine_spn.node_count(), coarse_spn.node_count());
}

TEST(Learn, RejectsEmptyData) {
  DataMatrix empty;
  EXPECT_THROW(learn_spn(empty), std::logic_error);
}

TEST(Learn, LikelihoodBeatsUniformBaseline) {
  // Average log-likelihood of the learned model on training data must beat
  // a uniform distribution over the byte domain (sanity of the density
  // estimate).
  const auto data = clustered_data(2048, 23);
  const Spn spn = learn_spn(data);
  Evaluator evaluator(spn);
  double avg_ll = 0.0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    avg_ll += evaluator.evaluate_log(data.row(r));
  }
  avg_ll /= static_cast<double>(data.rows());
  const double uniform_ll = 2.0 * std::log(1.0 / 256.0);
  EXPECT_GT(avg_ll, uniform_ll);
}

}  // namespace
}  // namespace spnhbm::spn
