#include "spnhbm/spn/transform.hpp"

#include <gtest/gtest.h>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/spn/text_format.hpp"
#include "spnhbm/spn/validate.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::spn {
namespace {

/// Pointwise equivalence check over random samples.
void expect_equivalent(const Spn& a, const Spn& b, double tolerance = 0.0) {
  Evaluator eval_a(a), eval_b(b);
  Rng rng(99);
  const std::size_t width = std::max(a.variable_count(), b.variable_count());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> sample(width);
    for (auto& v : sample) v = static_cast<double>(rng.next_below(256));
    const double va = eval_a.evaluate(sample);
    const double vb = eval_b.evaluate(sample);
    if (tolerance == 0.0) {
      EXPECT_DOUBLE_EQ(va, vb);
    } else if (va > 0) {
      EXPECT_NEAR(vb / va, 1.0, tolerance);
    }
  }
}

Spn nested_spn() {
  // Sum-of-sum and product-of-product nesting to flatten.
  return parse_spn(R"(
    Sum(0.5*Sum(0.4*Histogram(V0|[0,256];[0.00390625])
              + 0.6*Histogram(V0|[0,128,256];[0.005,0.0028125]))
      + 0.5*Histogram(V0|[0,64,256];[0.01,0.001875]))
  )");
}

TEST(Flatten, CollapsesNestedSums) {
  const Spn original = nested_spn();
  const Spn flat = flatten(original);
  EXPECT_TRUE(validate(flat).empty());
  // Root sum now has 3 direct children, no sum children.
  const auto& root = std::get<SumNode>(flat.node(flat.root()));
  EXPECT_EQ(root.children.size(), 3u);
  for (const NodeId child : root.children) {
    EXPECT_NE(flat.kind(child), NodeKind::kSum);
  }
  // Weights folded: 0.5*0.4, 0.5*0.6, 0.5.
  EXPECT_DOUBLE_EQ(root.weights[0], 0.2);
  EXPECT_DOUBLE_EQ(root.weights[1], 0.3);
  EXPECT_DOUBLE_EQ(root.weights[2], 0.5);
  expect_equivalent(original, flat);
}

TEST(Flatten, CollapsesNestedProducts) {
  Spn spn;
  const auto h0 = spn.add_histogram(0, {0, 256}, {0.00390625});
  const auto h1 = spn.add_histogram(1, {0, 256}, {0.00390625});
  const auto h2 = spn.add_histogram(2, {0, 256}, {0.00390625});
  const auto inner = spn.add_product({h0, h1});
  spn.set_root(spn.add_product({inner, h2}));
  const Spn flat = flatten(spn);
  const auto& root = std::get<ProductNode>(flat.node(flat.root()));
  EXPECT_EQ(root.children.size(), 3u);
  expect_equivalent(spn, flat);
}

TEST(Flatten, IdentityOnAlreadyFlatGraphs) {
  RandomSpnConfig config;
  config.variables = 6;
  config.seed = 3;
  const Spn spn = make_random_spn(config);
  const Spn flat = flatten(spn);
  expect_equivalent(spn, flat);
  EXPECT_LE(flat.node_count(), spn.node_count());
}

TEST(Prune, DropsTinyComponentsAndRenormalises) {
  const Spn original = parse_spn(R"(
    Sum(0.0001*Histogram(V0|[0,256];[0.00390625])
      + 0.4999*Histogram(V0|[0,128,256];[0.005,0.0028125])
      + 0.5*Histogram(V0|[0,64,256];[0.01,0.001875]))
  )");
  const Spn pruned = prune_low_weights(original, 0.01);
  EXPECT_TRUE(validate(pruned).empty());
  const auto& root = std::get<SumNode>(pruned.node(pruned.root()));
  EXPECT_EQ(root.children.size(), 2u);
  // The distribution changes by at most the pruned mass.
  expect_equivalent(original, pruned, 0.01);
}

TEST(Prune, NeverDropsEverything) {
  const Spn original = parse_spn(R"(
    Sum(0.5*Histogram(V0|[0,256];[0.00390625])
      + 0.5*Histogram(V0|[0,128,256];[0.005,0.0028125]))
  )");
  const Spn pruned = prune_low_weights(original, 0.9);
  const auto& root = std::get<SumNode>(pruned.node(pruned.root()));
  EXPECT_EQ(root.children.size(), 1u);
  EXPECT_DOUBLE_EQ(root.weights[0], 1.0);
}

TEST(Prune, ZeroThresholdIsIdentity) {
  RandomSpnConfig config;
  config.variables = 5;
  config.seed = 7;
  const Spn spn = make_random_spn(config);
  expect_equivalent(spn, prune_low_weights(spn, 0.0));
}

TEST(Prune, RejectsBadThreshold) {
  const Spn spn = nested_spn();
  EXPECT_THROW(prune_low_weights(spn, 1.0), std::logic_error);
  EXPECT_THROW(prune_low_weights(spn, -0.1), std::logic_error);
}

TEST(Deduplicate, SharesIdenticalSubtrees) {
  // Text-format parsing always builds trees; two identical components
  // must collapse into one shared subgraph.
  const Spn tree = parse_spn(R"(
    Sum(0.5*Product(Histogram(V0|[0,256];[0.00390625])
                  * Histogram(V1|[0,256];[0.00390625]))
      + 0.5*Product(Histogram(V0|[0,256];[0.00390625])
                  * Histogram(V1|[0,256];[0.00390625])))
  )");
  const Spn dag = deduplicate(tree);
  // 7 tree nodes -> 1 sum + 1 shared product + 2 shared leaves = 4.
  EXPECT_EQ(dag.reachable_topological().size(), 4u);
  expect_equivalent(tree, dag);
  EXPECT_TRUE(validate(dag).empty());
}

TEST(Deduplicate, KeepsDistinctSubtreesDistinct) {
  const Spn spn = nested_spn();
  const Spn dag = deduplicate(spn);
  expect_equivalent(spn, dag);
}

TEST(Optimise, PipelineShrinksLearnedModels) {
  RandomSpnConfig config;
  config.variables = 8;
  config.sum_fanout = 3;
  config.seed = 21;
  const Spn spn = make_random_spn(config);
  const Spn optimised = optimise(spn);
  EXPECT_TRUE(validate(optimised).empty());
  EXPECT_LE(optimised.reachable_topological().size(),
            spn.reachable_topological().size());
  expect_equivalent(spn, optimised);
}

TEST(Optimise, RandomisedEquivalenceSweep) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomSpnConfig config;
    config.variables = 5;
    config.seed = seed;
    const Spn spn = make_random_spn(config);
    expect_equivalent(spn, optimise(spn));
  }
}

}  // namespace
}  // namespace spnhbm::spn
