#include "spnhbm/runtime/inference_runtime.hpp"

#include <gtest/gtest.h>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::runtime {
namespace {

struct Harness {
  explicit Harness(std::size_t variables = 10, int pes = 1,
                   bool compute_results = false)
      : model(workload::make_nips_model(variables)),
        backend(arith::make_cfp_backend(arith::paper_cfp_format())),
        module(compiler::compile_spn(model.spn, *backend)) {
    tapasco::CompositionConfig composition;
    composition.pe_count = pes;
    composition.compute_results = compute_results;
    device = std::make_unique<tapasco::Device>(runner, module, *backend,
                                               composition);
  }

  sim::Scheduler scheduler;
  sim::ProcessRunner runner{scheduler};
  workload::NipsModel model;
  std::unique_ptr<arith::ArithBackend> backend;
  compiler::DatapathModule module;
  std::unique_ptr<tapasco::Device> device;
};

TEST(InferenceRuntime, SelfConfiguresFromAccelerator) {
  Harness h;
  RuntimeConfig config;
  EXPECT_NO_THROW(InferenceRuntime(h.runner, *h.device, h.module, config));
}

TEST(InferenceRuntime, SinglePeEndToEndAnchor) {
  // The paper's 1-PE NIPS10 anchor: 133.1 Msamples/s end-to-end with one
  // control thread. Accept a +-15% corridor (see EXPERIMENTS.md).
  Harness h(10, 1);
  InferenceRuntime runtime(h.runner, *h.device, h.module);
  const auto stats = runtime.run(4'000'000);
  EXPECT_NEAR(stats.samples_per_second, 133.1e6, 133.1e6 * 0.15);
}

TEST(InferenceRuntime, WithoutTransfersHitsDatapathRate) {
  // Fig. 4 left: on-device rate is the II=1 pipeline rate (~225 M/s).
  Harness h(10, 1);
  RuntimeConfig config;
  config.include_transfers = false;
  InferenceRuntime runtime(h.runner, *h.device, h.module, config);
  const auto stats = runtime.run(4'000'000);
  EXPECT_GT(stats.samples_per_second, 0.92 * 225e6);
  EXPECT_LT(stats.samples_per_second, 225e6);
  EXPECT_EQ(stats.dma_bytes, 0u);
}

TEST(InferenceRuntime, ComputeOnlyScalesNearlyLinearly) {
  // Fig. 4 left: near-linear scaling to 8 PEs without transfers.
  const auto rate_with_pes = [](int pes) {
    Harness h(10, pes);
    RuntimeConfig config;
    config.include_transfers = false;
    config.block_samples = 1 << 18;
    InferenceRuntime runtime(h.runner, *h.device, h.module, config);
    return runtime.run(static_cast<std::uint64_t>(pes) * 2'000'000).samples_per_second;
  };
  const double one = rate_with_pes(1);
  const double eight = rate_with_pes(8);
  EXPECT_GT(eight / one, 7.6);
  EXPECT_LT(eight / one, 8.1);
}

TEST(InferenceRuntime, EndToEndScalingFlattensAtDmaBound) {
  // Fig. 4 right: with transfers, NIPS10 stops scaling around 5 PEs; the
  // 5-PE anchor is ~614.7 Msamples/s and 8 PEs gain little over 5.
  const auto rate_with_pes = [](int pes) {
    Harness h(10, pes);
    InferenceRuntime runtime(h.runner, *h.device, h.module);
    return runtime.run(static_cast<std::uint64_t>(pes) * 3'000'000).samples_per_second;
  };
  const double five = rate_with_pes(5);
  const double eight = rate_with_pes(8);
  EXPECT_NEAR(five, 614.7e6, 614.7e6 * 0.15);
  EXPECT_LT(eight / five, 1.15);  // flattened
}

TEST(InferenceRuntime, DmaSaturatesAtHighPeCounts) {
  Harness h(10, 8);
  InferenceRuntime runtime(h.runner, *h.device, h.module);
  const auto stats = runtime.run(16'000'000);
  EXPECT_GT(stats.dma_utilisation, 0.85);
}

TEST(InferenceRuntime, TwoThreadsHelpAtOnePe) {
  // Paper §V-B: >1 control thread only helps below four PEs.
  const auto rate = [](int pes, int threads) {
    Harness h(10, pes);
    RuntimeConfig config;
    config.threads_per_pe = threads;
    InferenceRuntime runtime(h.runner, *h.device, h.module, config);
    return runtime.run(static_cast<std::uint64_t>(pes) * 3'000'000)
        .samples_per_second;
  };
  EXPECT_GT(rate(1, 2), 1.25 * rate(1, 1));   // overlap helps at 1 PE
  EXPECT_LT(rate(8, 2), 1.10 * rate(8, 1));   // DMA-bound at 8 PEs
}

TEST(InferenceRuntime, FunctionalInferenceMatchesReference) {
  Harness h(10, 1, /*compute_results=*/true);
  InferenceRuntime runtime(h.runner, *h.device, h.module);
  Rng rng(7);
  const std::size_t count = 257;  // deliberately not burst-aligned
  std::vector<std::uint8_t> samples(count * 10);
  for (auto& b : samples) b = static_cast<std::uint8_t>(rng.next_below(64));
  const auto results = runtime.infer(samples);
  ASSERT_EQ(results.size(), count);

  spn::Evaluator reference(h.model.spn);
  for (std::size_t i = 0; i < count; ++i) {
    const double want = reference.evaluate_bytes(
        std::span<const std::uint8_t>(samples).subspan(i * 10, 10));
    if (want > 1e-30) {
      EXPECT_NEAR(results[i] / want, 1.0, 1e-3) << "sample " << i;
    }
  }
}

TEST(InferenceRuntime, RunStatsDescribe) {
  Harness h(10, 1);
  InferenceRuntime runtime(h.runner, *h.device, h.module);
  const auto stats = runtime.run(1 << 20);
  EXPECT_EQ(stats.samples, 1u << 20);
  EXPECT_GT(stats.elapsed, 0);
  EXPECT_NE(stats.describe().find("samples"), std::string::npos);
}

TEST(InferenceRuntime, OversizedBlocksExhaustDeviceMemory) {
  // A block larger than the 256 MiB HBM channel cannot be double-buffered;
  // the allocator must fail loudly, not wrap around.
  Harness h(80, 1);
  RuntimeConfig config;
  config.block_samples = 4u << 20;  // 4 Mi samples x 80 B > 256 MiB
  InferenceRuntime runtime(h.runner, *h.device, h.module, config);
  EXPECT_THROW(runtime.run(8u << 20), DeviceMemoryError);
}

TEST(InferenceRuntime, MemoryManagerBalancesAfterRuns) {
  Harness h(10, 2);
  InferenceRuntime runtime(h.runner, *h.device, h.module);
  (void)runtime.run(1 << 20);
  for (std::size_t channel = 0; channel < 2; ++channel) {
    EXPECT_EQ(runtime.memory().bytes_allocated(channel), 0u);
  }
}

TEST(InferenceRuntime, RejectsBadConfig) {
  Harness h;
  RuntimeConfig config;
  config.block_samples = 0;
  EXPECT_THROW(InferenceRuntime(h.runner, *h.device, h.module, config),
               ConfigError);
  RuntimeConfig config2;
  config2.threads_per_pe = 99;
  EXPECT_THROW(InferenceRuntime(h.runner, *h.device, h.module, config2),
               ConfigError);
}

}  // namespace
}  // namespace spnhbm::runtime
