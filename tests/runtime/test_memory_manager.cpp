#include "spnhbm/runtime/memory_manager.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace spnhbm::runtime {
namespace {

TEST(MemoryManager, AllocatesAligned) {
  DeviceMemoryManager manager(2, 1 << 20);
  const auto a = manager.allocate(0, 100);
  const auto b = manager.allocate(0, 100);
  EXPECT_EQ(a % DeviceMemoryManager::kAlignment, 0u);
  EXPECT_EQ(b % DeviceMemoryManager::kAlignment, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.bytes_allocated(0), 256u);  // 2 x round-up to 128
}

TEST(MemoryManager, ChannelsAreIndependentArenas) {
  DeviceMemoryManager manager(2, 1 << 20);
  const auto a = manager.allocate(0, 4096);
  const auto b = manager.allocate(1, 4096);
  EXPECT_EQ(a, b);  // same address in different channels
  EXPECT_EQ(manager.bytes_allocated(0), 4096u);
  EXPECT_EQ(manager.bytes_allocated(1), 4096u);
}

TEST(MemoryManager, FreeCoalescesNeighbours) {
  DeviceMemoryManager manager(1, 1 << 20);
  const auto a = manager.allocate(0, 4096);
  const auto b = manager.allocate(0, 4096);
  const auto c = manager.allocate(0, 4096);
  manager.free(0, a);
  manager.free(0, c);
  EXPECT_LT(manager.largest_free_block(0), manager.capacity_per_channel());
  manager.free(0, b);  // middle free merges everything back
  EXPECT_EQ(manager.largest_free_block(0), manager.capacity_per_channel());
  EXPECT_EQ(manager.bytes_free(0), manager.capacity_per_channel());
}

TEST(MemoryManager, ExhaustionThrows) {
  DeviceMemoryManager manager(1, 8192);
  (void)manager.allocate(0, 8192);
  EXPECT_THROW(manager.allocate(0, 64), DeviceMemoryError);
}

TEST(MemoryManager, DoubleFreeThrows) {
  DeviceMemoryManager manager(1, 8192);
  const auto a = manager.allocate(0, 64);
  manager.free(0, a);
  EXPECT_THROW(manager.free(0, a), DeviceMemoryError);
  EXPECT_THROW(manager.free(0, 12345), DeviceMemoryError);
}

TEST(MemoryManager, ReusesFreedSpace) {
  DeviceMemoryManager manager(1, 8192);
  const auto a = manager.allocate(0, 4096);
  manager.free(0, a);
  const auto b = manager.allocate(0, 8192);
  EXPECT_EQ(b, 0u);
}

TEST(MemoryManager, FirstFitPrefersLowestAddress) {
  DeviceMemoryManager manager(1, 1 << 20);
  const auto a = manager.allocate(0, 4096);
  const auto b = manager.allocate(0, 4096);
  (void)manager.allocate(0, 4096);
  manager.free(0, a);
  manager.free(0, b);  // coalesced hole [0, 8192)
  EXPECT_EQ(manager.allocate(0, 2048), 0u);
}

TEST(MemoryManager, RaiiBufferFreesOnScopeExit) {
  DeviceMemoryManager manager(1, 1 << 20);
  {
    DeviceBuffer buffer(manager, 0, 4096);
    EXPECT_EQ(manager.bytes_allocated(0), 4096u);
    EXPECT_EQ(buffer.size(), 4096u);
  }
  EXPECT_EQ(manager.bytes_allocated(0), 0u);
}

TEST(MemoryManager, MoveTransfersOwnership) {
  DeviceMemoryManager manager(1, 1 << 20);
  DeviceBuffer first(manager, 0, 4096);
  {
    DeviceBuffer second(std::move(first));
    EXPECT_EQ(manager.bytes_allocated(0), 4096u);
  }
  EXPECT_EQ(manager.bytes_allocated(0), 0u);
}

TEST(MemoryManager, ThreadSafeUnderContention) {
  // The paper calls the manager out as thread-safe; hammer it from real
  // threads and verify the books balance.
  DeviceMemoryManager manager(4, 64 * 1024 * 1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&manager, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::size_t channel = static_cast<std::size_t>((t + i) % 4);
        const auto address =
            manager.allocate(channel, 1024 + static_cast<std::uint64_t>(i % 7) * 64);
        manager.free(channel, address);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t channel = 0; channel < 4; ++channel) {
    EXPECT_EQ(manager.bytes_allocated(channel), 0u);
    EXPECT_EQ(manager.bytes_free(channel), manager.capacity_per_channel());
  }
}

TEST(MemoryManager, RejectsBadArguments) {
  EXPECT_THROW(DeviceMemoryManager(0, 1024), std::logic_error);
  DeviceMemoryManager manager(1, 1024);
  EXPECT_THROW(manager.allocate(0, 0), std::logic_error);
  EXPECT_THROW(manager.allocate(5, 64), std::logic_error);
}

TEST(MemoryManager, FragmentationShrinksLargestBlockNotFreeTotal) {
  // Alternating free pattern: half the capacity is free but no block is
  // larger than one slot — the classic fragmentation signature the
  // bytes_free / largest_free_block pair is meant to expose.
  DeviceMemoryManager manager(1, 64 * 16);
  std::vector<std::uint64_t> addresses;
  for (int i = 0; i < 16; ++i) addresses.push_back(manager.allocate(0, 64));
  for (int i = 0; i < 16; i += 2) manager.free(0, addresses[i]);

  EXPECT_EQ(manager.bytes_free(0), 64u * 8u);
  EXPECT_EQ(manager.largest_free_block(0), 64u);
  // Half the arena is free, yet a 2-slot request cannot be placed.
  EXPECT_THROW(manager.allocate(0, 128), DeviceMemoryError);
  // Singles still fit (first fit lands in the lowest hole).
  EXPECT_EQ(manager.allocate(0, 64), addresses[0]);

  // Freeing the interleaved survivors coalesces everything back into one
  // block and the 2-slot request succeeds.
  for (int i = 1; i < 16; i += 2) manager.free(0, addresses[i]);
  manager.free(0, addresses[0]);
  EXPECT_EQ(manager.bytes_free(0), 64u * 16u);
  EXPECT_EQ(manager.largest_free_block(0), 64u * 16u);
  EXPECT_NO_THROW(manager.allocate(0, 128));
}

TEST(MemoryManager, FreeBytesTracksAllocationsExactly) {
  DeviceMemoryManager manager(2, 1 << 12);
  EXPECT_EQ(manager.bytes_free(0), 1u << 12);
  const auto a = manager.allocate(0, 100);  // rounds up to 128
  EXPECT_EQ(manager.bytes_free(0), (1u << 12) - 128u);
  EXPECT_EQ(manager.bytes_free(1), 1u << 12);  // other channel untouched
  manager.free(0, a);
  EXPECT_EQ(manager.bytes_free(0), 1u << 12);
}

TEST(MemoryManager, PublishesPerChannelFreeBytesGauge) {
  DeviceMemoryManager manager(2, 1 << 12);
  const auto gauge0 = telemetry::metrics().gauge("runtime.devmem.ch0.bytes_free");
  const auto gauge1 = telemetry::metrics().gauge("runtime.devmem.ch1.bytes_free");
  EXPECT_EQ(gauge0->value(), static_cast<double>(1 << 12));

  const auto a = manager.allocate(0, 256);
  EXPECT_EQ(gauge0->value(), static_cast<double>((1 << 12) - 256));
  EXPECT_EQ(gauge1->value(), static_cast<double>(1 << 12));
  manager.free(0, a);
  EXPECT_EQ(gauge0->value(), static_cast<double>(1 << 12));

  // A newer manager takes over the gauge names (newest writer wins).
  DeviceMemoryManager successor(2, 1 << 10);
  EXPECT_EQ(gauge0->value(), static_cast<double>(1 << 10));
}

}  // namespace
}  // namespace spnhbm::runtime
