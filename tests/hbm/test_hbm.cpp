#include "spnhbm/hbm/hbm.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "spnhbm/fault/fault.hpp"
#include "spnhbm/sim/process.hpp"
#include "spnhbm/telemetry/trace.hpp"

namespace spnhbm::hbm {
namespace {

/// Drives `bytes` of linear traffic (single outstanding burst) and returns
/// the achieved bandwidth in GiB/s.
double measure_linear_read(HbmChannel& channel, sim::Scheduler& scheduler,
                           std::uint64_t total_bytes) {
  sim::ProcessRunner runner(scheduler);
  const Picoseconds start = scheduler.now();
  runner.spawn([&]() -> sim::Process {
    co_await axi::linear_transfer(channel.port(), 0, total_bytes,
                                  /*is_write=*/false);
  });
  scheduler.run();
  runner.check();
  const double seconds = to_seconds(scheduler.now() - start);
  return static_cast<double>(total_bytes) / seconds /
         static_cast<double>(kGiB);
}

TEST(HbmChannel, LargeLinearReadsReachCalibratedBandwidth) {
  sim::Scheduler scheduler;
  HbmChannel channel(scheduler);
  // The paper's measured per-channel plateau: ~12 GiB/s for large linear
  // transfers (out of 13.4 GiB/s raw).
  const double gib_per_s = measure_linear_read(channel, scheduler, 64 * kMiB);
  EXPECT_GT(gib_per_s, 11.0);
  EXPECT_LT(gib_per_s, 13.4);
}

TEST(HbmChannel, ParallelReadWriteSharesOneChannel) {
  sim::Scheduler scheduler;
  HbmChannel channel(scheduler);
  sim::ProcessRunner runner(scheduler);
  const std::uint64_t bytes = 16 * kMiB;
  runner.spawn([&]() -> sim::Process {
    co_await axi::linear_transfer(channel.port(), 0, bytes, false);
  });
  runner.spawn([&]() -> sim::Process {
    co_await axi::linear_transfer(channel.port(), 128 * kMiB, bytes, true);
  });
  scheduler.run();
  runner.check();
  const double combined = static_cast<double>(2 * bytes) /
                          to_seconds(scheduler.now()) /
                          static_cast<double>(kGiB);
  // Combined R+W throughput still close to the plateau (Fig. 2 pattern),
  // clearly above a single direction running at half rate.
  EXPECT_GT(combined, 10.5);
  EXPECT_LT(combined, 13.4);
  EXPECT_EQ(channel.bytes_read(), bytes);
  EXPECT_EQ(channel.bytes_written(), bytes);
}

TEST(HbmChannel, SmallBurstsLoseEfficiency) {
  // Per-burst overhead hurts small bursts: same total bytes, different
  // burst granularity.
  const auto measure = [](std::uint32_t burst_bytes) {
    sim::Scheduler scheduler;
    HbmChannel channel(scheduler);
    sim::ProcessRunner runner(scheduler);
    const std::uint64_t total = 4 * kMiB;
    runner.spawn([&channel, burst_bytes, total]() -> sim::Process {
      for (std::uint64_t cursor = 0; cursor < total; cursor += burst_bytes) {
        co_await channel.access(
            axi::BurstRequest{cursor, burst_bytes, false});
      }
    });
    scheduler.run();
    runner.check();
    return static_cast<double>(total) / to_seconds(scheduler.now());
  };
  EXPECT_LT(measure(256), 0.8 * measure(4096));
}

TEST(HbmChannel, BackdoorRoundTrip) {
  sim::Scheduler scheduler;
  HbmChannel channel(scheduler);
  std::vector<std::uint8_t> data(200'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  // Cross page boundaries (pages are 64 KiB).
  channel.write_backdoor(12'345, data);
  std::vector<std::uint8_t> out(data.size());
  channel.read_backdoor(12'345, out);
  EXPECT_EQ(out, data);
}

TEST(HbmChannel, BackdoorReadsZeroFill) {
  sim::Scheduler scheduler;
  HbmChannel channel(scheduler);
  std::vector<std::uint8_t> out(64, 0xFF);
  channel.read_backdoor(1 * kMiB, out);
  for (const auto byte : out) EXPECT_EQ(byte, 0);
}

TEST(HbmChannel, RejectsOutOfRangeAccess) {
  sim::Scheduler scheduler;
  HbmChannel channel(scheduler);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await channel.access(
        axi::BurstRequest{channel.config().capacity_bytes - 16, 64, false});
  });
  scheduler.run();
  EXPECT_THROW(runner.check(), std::logic_error);
}

TEST(HbmDevice, Has32IndependentChannels) {
  sim::Scheduler scheduler;
  HbmDevice device(scheduler);
  EXPECT_EQ(device.channel_count(), 32u);
  EXPECT_NEAR(HbmDevice::theoretical_peak().as_gib_per_second(), 428.4, 0.5);
}

TEST(HbmDevice, ChannelsScaleLinearly) {
  // The paper's §II-B claim: without the crossbar, performance scales
  // linearly with the number of channels used.
  const auto run_with_channels = [](std::size_t n) {
    sim::Scheduler scheduler;
    HbmDevice device(scheduler);
    sim::ProcessRunner runner(scheduler);
    const std::uint64_t bytes = 8 * kMiB;
    for (std::size_t c = 0; c < n; ++c) {
      runner.spawn([&device, c, bytes]() -> sim::Process {
        co_await axi::linear_transfer(device.port(c), 0, bytes, false);
      });
    }
    scheduler.run();
    runner.check();
    return static_cast<double>(n * bytes) / to_seconds(scheduler.now());
  };
  const double one = run_with_channels(1);
  const double eight = run_with_channels(8);
  const double thirty_two = run_with_channels(32);
  EXPECT_NEAR(eight / one, 8.0, 0.01);
  EXPECT_NEAR(thirty_two / one, 32.0, 0.01);
}

TEST(HbmDevice, CrossbarAddsLatencyAndCostsThroughput) {
  const auto run = [](bool crossbar) {
    sim::Scheduler scheduler;
    HbmDeviceConfig config;
    config.crossbar_enabled = crossbar;
    HbmDevice device(scheduler, config);
    sim::ProcessRunner runner(scheduler);
    runner.spawn([&device]() -> sim::Process {
      co_await axi::linear_transfer(device.port(0), 0, 8 * kMiB, false);
    });
    scheduler.run();
    runner.check();
    return to_seconds(scheduler.now());
  };
  EXPECT_GT(run(true), run(false) * 1.15);
}

TEST(HbmChannelFaults, InjectedStallExtendsServiceTimeExactly) {
  // A stall on every burst holds the channel for exactly the configured
  // duration on top of the calibrated service time: 4 bursts of a 16 KiB
  // read stalled 10 us each cost precisely 40 us of extra virtual time.
  const auto run = [](bool inject) {
    sim::Scheduler scheduler;
    HbmChannel channel(scheduler);
    std::unique_ptr<fault::ScopedFaultPlan> armed;
    if (inject) {
      fault::FaultPlan plan;
      fault::FaultRule rule;
      rule.site = "hbm.access";
      rule.kind = fault::FaultKind::kStall;
      rule.every = 1;
      rule.duration_us = 10.0;
      plan.rules.push_back(rule);
      armed = std::make_unique<fault::ScopedFaultPlan>(plan);
    }
    sim::ProcessRunner runner(scheduler);
    runner.spawn([&]() -> sim::Process {
      co_await axi::linear_transfer(channel.port(), 0, 16 * 1024, false);
    });
    scheduler.run();
    runner.check();
    return scheduler.now();
  };
  const Picoseconds baseline = run(false);
  const Picoseconds stalled = run(true);
  EXPECT_EQ(stalled - baseline, 4 * microseconds(10.0));
}

TEST(HbmChannelFaults, InjectedFaultsAreAnnotatedOntoTheChannelLane) {
  // With tracing enabled, every fired decision leaves a "fault.<kind>"
  // instant on the channel's own swim lane — including a fail, whose
  // access never completes a rd/wr span.
  telemetry::tracer().enable();
  sim::Scheduler scheduler;
  HbmChannel channel(scheduler);  // after enable() so the track registers
  fault::FaultPlan plan;
  fault::FaultRule stall;
  stall.site = "hbm.access";
  stall.kind = fault::FaultKind::kStall;
  stall.has_window = true;
  stall.from = 0;
  stall.until = 1;
  stall.duration_us = 5.0;
  plan.rules.push_back(stall);
  fault::FaultRule fail = stall;
  fail.kind = fault::FaultKind::kFail;
  fail.from = 1;
  fail.until = 2;
  plan.rules.push_back(fail);
  fault::ScopedFaultPlan armed(plan);

  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await channel.access({0, 1024, false});
    co_await channel.access({0, 1024, false});
  });
  scheduler.run();
  EXPECT_THROW(runner.check(), HbmEccError);

  const std::string json = telemetry::tracer().chrome_trace_json();
  telemetry::tracer().disable();
  EXPECT_NE(json.find("fault.stall"), std::string::npos);
  EXPECT_NE(json.find("fault.fail"), std::string::npos);
}

TEST(HbmChannelFaults, CorruptionIsDetectedByEccNotReturnedSilently) {
  // The ECC model: an injected corruption flips bits in the backing store
  // and the access *fails* — bad data never reaches the accelerator.
  sim::Scheduler scheduler;
  HbmChannel channel(scheduler);
  const std::uint8_t original = 0xAB;
  channel.write_backdoor(0, {&original, 1});

  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "hbm.access";
  rule.kind = fault::FaultKind::kCorrupt;
  rule.has_window = true;
  rule.from = 0;
  rule.until = 1;
  rule.corrupt_mask = 0x0F;
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);

  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await axi::linear_transfer(channel.port(), 0, 4096, false);
  });
  scheduler.run();
  EXPECT_THROW(runner.check(), HbmEccError);
  // The stored byte really was corrupted (mask applied), which is what the
  // modelled ECC detected.
  std::uint8_t after = 0;
  channel.read_backdoor(0, {&after, 1});
  EXPECT_EQ(after, original ^ 0x0F);
  EXPECT_EQ(fault::injector().injected(), 1u);
}

TEST(HbmChannelFaults, FailKindAbortsTheAccess) {
  sim::Scheduler scheduler;
  HbmChannel channel(scheduler);
  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "hbm.access";
  rule.kind = fault::FaultKind::kFail;
  rule.has_window = true;
  rule.from = 0;
  rule.until = 1;
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await axi::linear_transfer(channel.port(), 0, 4096, true);
  });
  scheduler.run();
  EXPECT_THROW(runner.check(), HbmEccError);
  EXPECT_EQ(channel.bytes_written(), 0u);
}

}  // namespace
}  // namespace spnhbm::hbm
