# Design round-trip smoke test (run via `cmake -P`): compiling a model to
# a serialised design file, loading it back and inferring must be
# byte-identical with inferring straight from the textual description.
#
# Inputs: -DCLI=<spnhbm_cli> -DMODEL=<model.spn> -DSAMPLES=<samples.csv>
#         -DWORK_DIR=<scratch dir>
set(design "${WORK_DIR}/roundtrip_design.bin")

execute_process(COMMAND ${CLI} compile ${MODEL} --out ${design}
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "compile --out failed with ${rc}")
endif()

execute_process(COMMAND ${CLI} infer ${MODEL} ${SAMPLES}
  RESULT_VARIABLE rc OUTPUT_VARIABLE from_text)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "infer from text failed with ${rc}")
endif()

execute_process(COMMAND ${CLI} infer ${design} ${SAMPLES}
  RESULT_VARIABLE rc OUTPUT_VARIABLE from_binary)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "infer from design file failed with ${rc}")
endif()

if(from_text STREQUAL "")
  message(FATAL_ERROR "infer produced no output")
endif()
if(NOT from_text STREQUAL from_binary)
  message(FATAL_ERROR "round trip diverged:\n--- text ---\n${from_text}"
                      "\n--- binary ---\n${from_binary}")
endif()
