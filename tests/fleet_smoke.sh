#!/usr/bin/env bash
# Loopback end-to-end smoke for fleet serving:
#
#   1. `spnhbm resources --pes 100` must fail placement with the
#      structured per-resource deficit table (not a bare boolean),
#   2. start `spnhbm serve --fleet-devices 2` with two models, two
#      replicas each, behind one RPC endpoint; read the ephemeral port,
#   3. remote inference through the fleet router must be byte-identical
#      to the local engine path, for both models,
#   4. replay a weighted mixed-model open-loop load (a:3, b:1) while the
#      telemetry-driven rebalancer runs, check the client conservation
#      summary and the per-model split in the report,
#   5. shut down via the wire frame; the fleet report must show the
#      router's own conservation line.
#
# Usage: fleet_smoke.sh <spnhbm-cli> <model.spn> <samples.csv> <work-dir> \
#                       <model2.spn> <samples2.csv>
set -euo pipefail

CLI=$1
MODEL=$2
SAMPLES=$3
WORK=$4
MODEL2=$5
SAMPLES2=$6

mkdir -p "$WORK"
PORT_FILE=$WORK/fleet_smoke.port
SERVER_OUT=$WORK/fleet_smoke.server.out
rm -f "$PORT_FILE"

# Placement failures carry the per-resource deficit table.
"$CLI" resources "$MODEL" --pes 32 --platform hbm \
  > "$WORK/fleet_smoke.resources.out"
grep -q "placement: FAILS" "$WORK/fleet_smoke.resources.out"
grep -q "required" "$WORK/fleet_smoke.resources.out"
grep -q "PE slots" "$WORK/fleet_smoke.resources.out"
echo "resources reports structured deficits"

"$CLI" serve --model a="$MODEL" --model b="$MODEL2" \
  --fleet-devices 2 --fleet-replicas 2 --rebalance-ms 100 \
  --batch 8 --max-latency-us 500 --listen 0 --port-file "$PORT_FILE" \
  --trace-out "$WORK/fleet_smoke.server_trace.json" \
  > "$SERVER_OUT" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "fleet server died before binding:"; cat "$SERVER_OUT"; exit 1; }
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "fleet server never wrote the port file"; exit 1; }
PORT=$(cat "$PORT_FILE")
echo "fleet listening on port $PORT"

# Remote inference through the router vs the local single-tenant FPGA
# path: the spatial tenants must be byte-identical to it.
"$CLI" infer "$MODEL" "$SAMPLES" --engine fpga > "$WORK/fleet_smoke.local_a.out"
"$CLI" infer "$MODEL2" "$SAMPLES2" --engine fpga > "$WORK/fleet_smoke.local_b.out"
"$CLI" infer --connect "127.0.0.1:$PORT" "$SAMPLES" --model a \
  > "$WORK/fleet_smoke.remote_a.out"
"$CLI" infer --connect "127.0.0.1:$PORT" "$SAMPLES2" --model b \
  > "$WORK/fleet_smoke.remote_b.out"
diff "$WORK/fleet_smoke.local_a.out" "$WORK/fleet_smoke.remote_a.out"
diff "$WORK/fleet_smoke.local_b.out" "$WORK/fleet_smoke.remote_b.out"
echo "fleet remote inference matches local inference"

# Live introspection over the same endpoint: one ADMIN snapshot showing
# every member's engines and the fleet replica map.
"$CLI" top --connect "127.0.0.1:$PORT" --once > "$WORK/fleet_smoke.top.out"
cat "$WORK/fleet_smoke.top.out"
grep -q "member 0" "$WORK/fleet_smoke.top.out"
grep -q "member 1" "$WORK/fleet_smoke.top.out"
grep -q "replicas" "$WORK/fleet_smoke.top.out"
grep -q -- "-> member" "$WORK/fleet_smoke.top.out"
echo "top renders the fleet ADMIN snapshot"

# Weighted mixed-model load through the one endpoint, then drain. The
# traced run links fleet-routed requests across both member devices.
"$CLI" loadgen --connect "127.0.0.1:$PORT" \
  --model a:3 --model b:1 \
  --requests a="$SAMPLES" --requests b="$SAMPLES2" \
  --count 300 --rate 2000 --arrival poisson --connections 4 --seed 7 \
  --trace-out "$WORK/fleet_smoke.client_trace.json" \
  --report-out "$WORK/fleet_smoke.report.json" \
  --shutdown > "$WORK/fleet_smoke.loadgen.out"
cat "$WORK/fleet_smoke.loadgen.out"
grep -q "conservation (sent == sum over statuses): ok" \
  "$WORK/fleet_smoke.loadgen.out"
grep -q "model a " "$WORK/fleet_smoke.loadgen.out"
grep -q "model b " "$WORK/fleet_smoke.loadgen.out"
# The per-model latency breakdown rides in the report and the JSON.
grep -q "latency_us " "$WORK/fleet_smoke.loadgen.out"
grep -q '"name":"a"' "$WORK/fleet_smoke.report.json"
grep -q '"name":"b"' "$WORK/fleet_smoke.report.json"

for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "fleet ignored the shutdown frame:"; cat "$SERVER_OUT"; exit 1
fi
wait "$SERVER_PID" || { echo "fleet exited non-zero:"; cat "$SERVER_OUT"; exit 1; }
trap - EXIT

# The fleet report: router header, per-member blocks and the router's
# conservation counters.
grep -q "fleet: 2 device(s)" "$SERVER_OUT"
grep -q "member fpga0" "$SERVER_OUT"
grep -q "member fpga1" "$SERVER_OUT"
grep -Eq "fleet: routed=[0-9]+ accepted=" "$SERVER_OUT"

# Both sides of the traced run left Chrome-trace artifacts behind.
[ -s "$WORK/fleet_smoke.server_trace.json" ]
[ -s "$WORK/fleet_smoke.client_trace.json" ]
echo "fleet smoke: OK"
