// In-process soak-harness tests: a tiny soak passes the full assertion
// stack, reproduces its deterministic books across same-seed runs, and a
// disarmed chaos plan is indistinguishable (byte-identical describe())
// from running with no plan at all. The CLI-level smoke (soak_smoke.sh)
// covers the same properties end to end through `spnhbm soak`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/fault/fault.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/soak/soak.hpp"
#include "spnhbm/spn/random_spn.hpp"

namespace spnhbm::soak {
namespace {

SoakModel make_soak_model(const std::string& name, std::uint64_t seed) {
  spn::RandomSpnConfig spn_config;
  spn_config.variables = 4;
  spn_config.seed = seed;
  SoakModel entry;
  entry.model = model::ModelArtifact::compile(
      name, "1", spn::make_random_spn(spn_config),
      arith::make_float64_backend());
  const std::size_t width = entry.model->input_features();
  for (std::size_t p = 0; p < 6; ++p) {
    std::vector<std::uint8_t> payload((1 + p % 3) * width);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>((seed + 3 * p + 7 * i) % 13);
    }
    entry.payloads.push_back(std::move(payload));
  }
  return entry;
}

SoakConfig tiny_config() {
  SoakConfig config;
  config.seed = 42;
  config.minutes = 0.05;  // a few waves of virtual reconfiguration time
  config.devices = 2;
  config.replicas = 2;
  config.clients = 2;
  config.wave_requests = 4;
  config.swaps_per_wave = 2;
  config.rebalance_every = 2;
  config.models.push_back(make_soak_model("alpha", 11));
  config.models.push_back(make_soak_model("beta", 23));
  return config;
}

fault::FaultPlan mild_chaos() {
  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultRule submit;
  submit.site = "engine.submit";
  submit.kind = fault::FaultKind::kFail;
  submit.every = 9;
  plan.rules.push_back(submit);
  fault::FaultRule tx;
  tx.site = "rpc.conn.tx";
  tx.kind = fault::FaultKind::kFail;
  tx.every = 7;
  plan.rules.push_back(tx);
  fault::FaultRule rx;
  rx.site = "rpc.conn.rx";
  rx.kind = fault::FaultKind::kFail;
  rx.every = 11;
  plan.rules.push_back(rx);
  return plan;
}

TEST(Soak, TinyRunPassesTheFullAssertionStack) {
  const SoakReport report = run_soak(tiny_config());
  EXPECT_TRUE(report.passed()) << report.describe() << report.detail();
  EXPECT_GE(report.virtual_seconds, report.virtual_target_seconds);
  EXPECT_GT(report.waves, 0u);
  EXPECT_GT(report.swaps, 0u);
  EXPECT_GT(report.requests, 0u);
  EXPECT_EQ(report.requests, report.ok + report.giveups);
  EXPECT_NE(report.describe().find("soak verdict: PASS"), std::string::npos);
  EXPECT_NE(report.bench_json().find("\"bench\":\"soak\""), std::string::npos);
}

TEST(Soak, SameSeedReproducesTheDeterministicBooks) {
  const SoakReport first = run_soak(tiny_config());
  const SoakReport second = run_soak(tiny_config());
  EXPECT_EQ(first.describe(), second.describe());
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.waves, second.waves);
  EXPECT_EQ(first.swaps, second.swaps);
  EXPECT_EQ(first.requests, second.requests);
}

TEST(Soak, ChaosRunPassesAndNeverCorruptsResults) {
  SoakReport calm = run_soak(tiny_config());

  SoakReport chaotic = [] {
    fault::ScopedFaultPlan armed(mild_chaos());
    return run_soak(tiny_config());
  }();
  EXPECT_TRUE(chaotic.passed()) << chaotic.describe() << chaotic.detail();

  // Chaos reshuffles schedules (retries, reconnects — stderr detail),
  // but the deterministic books and the result digest must match the
  // calm run exactly: faults delay work, they never corrupt it.
  EXPECT_EQ(chaotic.describe(), calm.describe());
  EXPECT_EQ(chaotic.digest, calm.digest);
}

TEST(Soak, DisarmedPlanIsByteIdenticalToNoPlan) {
  const SoakReport calm = run_soak(tiny_config());

  fault::injector().arm(mild_chaos());
  fault::injector().disarm();
  const SoakReport disarmed = run_soak(tiny_config());

  // Only the deterministic summary is compared: a benign retry (e.g. a
  // transient overload under a hot-swap) can occur without any chaos
  // and lives in the stderr detail, never in describe().
  EXPECT_EQ(disarmed.describe(), calm.describe());
  EXPECT_EQ(disarmed.digest, calm.digest);
}

}  // namespace
}  // namespace spnhbm::soak
