#include "spnhbm/sim/process.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "spnhbm/util/error.hpp"

namespace spnhbm::sim {
namespace {

Process counting_process(Scheduler& scheduler, std::vector<Picoseconds>& times,
                         int steps, Picoseconds dt) {
  for (int i = 0; i < steps; ++i) {
    co_await delay(scheduler, dt);
    times.push_back(scheduler.now());
  }
}

TEST(Process, AdvancesVirtualTime) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  std::vector<Picoseconds> times;
  runner.spawn(counting_process(scheduler, times, 3, 100));
  scheduler.run();
  runner.check();
  EXPECT_EQ(times, (std::vector<Picoseconds>{100, 200, 300}));
  EXPECT_TRUE(runner.all_done());
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  std::vector<Picoseconds> a_times, b_times;
  runner.spawn(counting_process(scheduler, a_times, 4, 100));
  runner.spawn(counting_process(scheduler, b_times, 2, 250));
  scheduler.run();
  runner.check();
  EXPECT_EQ(a_times, (std::vector<Picoseconds>{100, 200, 300, 400}));
  EXPECT_EQ(b_times, (std::vector<Picoseconds>{250, 500}));
}

Process joiner(Scheduler& scheduler, ProcessRunner& runner,
               std::vector<int>& log) {
  std::vector<Picoseconds> ignored;
  Process child = runner.spawn(counting_process(scheduler, ignored, 1, 500));
  log.push_back(1);
  co_await child.join();
  log.push_back(2);
  EXPECT_EQ(scheduler.now(), 500);
}

TEST(Process, JoinWaitsForChild) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  std::vector<int> log;
  runner.spawn(joiner(scheduler, runner, log));
  scheduler.run();
  runner.check();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

Process throwing_process(Scheduler& scheduler) {
  co_await delay(scheduler, 10);
  throw Error("simulated failure");
}

TEST(Process, ExceptionSurfacesViaCheck) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  runner.spawn(throwing_process(scheduler));
  scheduler.run();
  EXPECT_THROW(runner.check(), Error);
  // A second check must not rethrow the consumed exception.
  EXPECT_NO_THROW(runner.check());
}

Process join_rethrows(Scheduler& scheduler, ProcessRunner& runner, bool& caught) {
  Process child = runner.spawn(throwing_process(scheduler));
  try {
    co_await child.join();
  } catch (const Error&) {
    caught = true;
  }
}

TEST(Process, JoinRethrowsChildException) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  bool caught = false;
  runner.spawn(join_rethrows(scheduler, runner, caught));
  scheduler.run();
  runner.check();  // exception was consumed by the join
  EXPECT_TRUE(caught);
}

Process immediate() { co_return; }

TEST(Process, JoinOnFinishedProcessIsReady) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Process p = runner.spawn(immediate());
  scheduler.run();
  EXPECT_TRUE(p.done());
  EXPECT_FALSE(p.failed());
}

TEST(Process, ZeroDelayYieldsThroughQueue) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  std::vector<int> order;
  auto maker = [&](int id) -> Process {
    co_await delay(scheduler, 0);
    order.push_back(id);
    co_await delay(scheduler, 0);
    order.push_back(id + 10);
  };
  runner.spawn(maker(1));
  runner.spawn(maker(2));
  scheduler.run();
  runner.check();
  // Round-robin interleaving, still at time zero.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12}));
  EXPECT_EQ(scheduler.now(), 0);
}

}  // namespace
}  // namespace spnhbm::sim
