#include "spnhbm/sim/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "spnhbm/sim/process.hpp"

namespace spnhbm::sim {
namespace {

Process producer(Scheduler& scheduler, Fifo<int>& fifo, int count,
                 Picoseconds period) {
  for (int i = 0; i < count; ++i) {
    co_await delay(scheduler, period);
    co_await fifo.put(i);
  }
}

Process consumer(Scheduler& scheduler, Fifo<int>& fifo, int count,
                 Picoseconds period, std::vector<int>& out) {
  for (int i = 0; i < count; ++i) {
    const int value = co_await fifo.get();
    out.push_back(value);
    co_await delay(scheduler, period);
  }
}

TEST(Fifo, PreservesOrderFastProducerSlowConsumer) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Fifo<int> fifo(scheduler, 4);
  std::vector<int> received;
  runner.spawn(producer(scheduler, fifo, 32, 1));
  runner.spawn(consumer(scheduler, fifo, 32, 10, received));
  scheduler.run();
  runner.check();
  ASSERT_EQ(received.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(received[i], i);
}

TEST(Fifo, BackPressureThrottlesProducer) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Fifo<int> fifo(scheduler, 2);
  std::vector<int> received;
  Picoseconds producer_done_at = 0;

  auto instrumented_producer = [&]() -> Process {
    for (int i = 0; i < 10; ++i) {
      co_await fifo.put(i);
    }
    producer_done_at = scheduler.now();
  };
  runner.spawn(instrumented_producer());
  runner.spawn(consumer(scheduler, fifo, 10, 100, received));
  scheduler.run();
  runner.check();
  // The producer cannot finish before the consumer has drained most items:
  // with capacity 2 and a 100 ps consumer period, the 10th put happens only
  // after ~7 consumption periods.
  EXPECT_GE(producer_done_at, 600);
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
}

TEST(Fifo, SlowProducerBlocksConsumer) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Fifo<int> fifo(scheduler, 8);
  std::vector<int> received;
  std::vector<Picoseconds> receive_times;

  auto instrumented_consumer = [&]() -> Process {
    for (int i = 0; i < 3; ++i) {
      const int value = co_await fifo.get();
      received.push_back(value);
      receive_times.push_back(scheduler.now());
    }
  };
  runner.spawn(instrumented_consumer());
  runner.spawn(producer(scheduler, fifo, 3, 50));
  scheduler.run();
  runner.check();
  EXPECT_EQ(receive_times, (std::vector<Picoseconds>{50, 100, 150}));
}

TEST(Fifo, MultipleProducersAreFifoFair) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Fifo<int> fifo(scheduler, 1);
  std::vector<int> received;
  // Both producers block on a full FIFO; hand-off must be FIFO-ordered.
  auto blocked_producer = [&](int base) -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await fifo.put(base + i);
    }
  };
  runner.spawn(blocked_producer(100));
  runner.spawn(blocked_producer(200));
  runner.spawn(consumer(scheduler, fifo, 6, 10, received));
  scheduler.run();
  runner.check();
  ASSERT_EQ(received.size(), 6u);
  // First producer got the free slot first; afterwards they alternate in
  // blocking order. The exact sequence is deterministic.
  EXPECT_EQ(received[0], 100);
}

TEST(Fifo, TryPutRespectsCapacity) {
  Scheduler scheduler;
  Fifo<int> fifo(scheduler, 2);
  EXPECT_TRUE(fifo.try_put(1));
  EXPECT_TRUE(fifo.try_put(2));
  EXPECT_FALSE(fifo.try_put(3));
  EXPECT_EQ(fifo.size(), 2u);
}

TEST(Resource, LimitsConcurrency) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Resource resource(scheduler, 2);
  int concurrent = 0;
  int max_concurrent = 0;
  auto worker = [&]() -> Process {
    co_await resource.acquire();
    ++concurrent;
    max_concurrent = std::max(max_concurrent, concurrent);
    co_await delay(scheduler, 100);
    --concurrent;
    resource.release();
  };
  for (int i = 0; i < 6; ++i) runner.spawn(worker());
  scheduler.run();
  runner.check();
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(scheduler.now(), 300);  // 6 jobs, 2 at a time, 100 ps each
  EXPECT_EQ(resource.available(), 2u);
}

TEST(Resource, FifoHandoffOrder) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Resource resource(scheduler, 1);
  std::vector<int> order;
  auto worker = [&](int id) -> Process {
    co_await resource.acquire();
    order.push_back(id);
    co_await delay(scheduler, 10);
    resource.release();
  };
  for (int i = 0; i < 4; ++i) runner.spawn(worker(i));
  scheduler.run();
  runner.check();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Resource, ReleaseWithoutAcquireThrows) {
  Scheduler scheduler;
  Resource resource(scheduler, 1);
  EXPECT_THROW(resource.release(), std::logic_error);
}

TEST(Notify, WakesAllWaiters) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Notify notify(scheduler);
  int woken = 0;
  auto waiter = [&]() -> Process {
    co_await notify.wait();
    ++woken;
  };
  for (int i = 0; i < 3; ++i) runner.spawn(waiter());
  runner.spawn([&]() -> Process {
    co_await delay(scheduler, 100);
    notify.notify_all();
  });
  scheduler.run();
  runner.check();
  EXPECT_EQ(woken, 3);
}

}  // namespace
}  // namespace spnhbm::sim
