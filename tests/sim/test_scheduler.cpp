#include "spnhbm/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace spnhbm::sim {
namespace {

TEST(Scheduler, CallbacksRunInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.call_at(300, [&] { order.push_back(3); });
  scheduler.call_at(100, [&] { order.push_back(1); });
  scheduler.call_at(200, [&] { order.push_back(2); });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 300);
}

TEST(Scheduler, SameTimeEventsAreFifo) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    scheduler.call_at(50, [&order, i] { order.push_back(i); });
  }
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler scheduler;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) scheduler.call_at(scheduler.now() + 10, tick);
  };
  scheduler.call_at(0, tick);
  scheduler.run();
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(scheduler.now(), 90);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.call_at(100, [&] { order.push_back(1); });
  scheduler.call_at(200, [&] { order.push_back(2); });
  scheduler.run_until(150);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(scheduler.now(), 150);
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RunUntilAdvancesTimeOnEmptyQueue) {
  Scheduler scheduler;
  scheduler.run_until(12345);
  EXPECT_EQ(scheduler.now(), 12345);
}

TEST(Scheduler, RejectsSchedulingIntoThePast) {
  Scheduler scheduler;
  scheduler.call_at(100, [] {});
  scheduler.run();
  EXPECT_THROW(scheduler.call_at(50, [] {}), std::logic_error);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler scheduler;
  EXPECT_FALSE(scheduler.step());
  EXPECT_TRUE(scheduler.empty());
}

// Regression: events_processed() used to report the number of events ever
// *scheduled* (the FIFO tie-break sequence), not the number executed.
TEST(Scheduler, CountsProcessedEventsNotScheduledOnes) {
  Scheduler scheduler;
  for (int i = 0; i < 5; ++i) {
    scheduler.call_at(100 * (i + 1), [] {});
  }
  EXPECT_EQ(scheduler.events_scheduled(), 5u);
  EXPECT_EQ(scheduler.events_processed(), 0u);  // nothing has run yet

  scheduler.run_until(250);
  EXPECT_EQ(scheduler.events_processed(), 2u);

  scheduler.run();
  EXPECT_EQ(scheduler.events_processed(), 5u);
  EXPECT_EQ(scheduler.events_scheduled(), 5u);

  // Events scheduled from inside callbacks count once executed.
  scheduler.call_at(scheduler.now() + 1, [&scheduler] {
    scheduler.call_at(scheduler.now() + 1, [] {});
  });
  scheduler.run();
  EXPECT_EQ(scheduler.events_processed(), 7u);
  EXPECT_EQ(scheduler.events_scheduled(), 7u);
}

}  // namespace
}  // namespace spnhbm::sim
