// Randomised model-checking of the DES primitives: drive FIFO and
// Resource with random schedules and compare against simple reference
// models (a std::deque, a counter). Any lost/duplicated/reordered item or
// permit violation fails.
#include <gtest/gtest.h>

#include <deque>

#include "spnhbm/sim/channel.hpp"
#include "spnhbm/sim/process.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::sim {
namespace {

class FifoModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FifoModelCheck, RandomScheduleMatchesReferenceQueue) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Rng rng(GetParam());
  const std::size_t capacity = 1 + rng.next_below(5);
  Fifo<int> fifo(scheduler, capacity);

  const int total = 500;
  std::deque<int> reference;   // items in flight, FIFO order
  std::vector<int> received;
  int next_value = 0;

  // Several producers with random pacing; one consumer with random pacing.
  const std::size_t producers = 1 + rng.next_below(3);
  const int per_producer = total / static_cast<int>(producers);
  const int actual_total = per_producer * static_cast<int>(producers);

  auto producer = [&](std::uint64_t seed) -> Process {
    Rng local(seed);
    for (int i = 0; i < per_producer; ++i) {
      co_await delay(scheduler,
                     static_cast<Picoseconds>(local.next_below(50)));
      // Values are globally ordered by put() completion; track at the
      // moment the put succeeds (single-threaded DES => deterministic).
      const int value = next_value++;
      reference.push_back(value);
      co_await fifo.put(value);
    }
  };
  auto consumer = [&]() -> Process {
    Rng local(1234);
    for (int i = 0; i < actual_total; ++i) {
      co_await delay(scheduler,
                     static_cast<Picoseconds>(local.next_below(70)));
      received.push_back(co_await fifo.get());
    }
  };
  for (std::size_t p = 0; p < producers; ++p) {
    runner.spawn(producer(GetParam() * 100 + p));
  }
  runner.spawn(consumer());
  scheduler.run();
  runner.check();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(actual_total));
  // No loss, no duplication: the received multiset equals {0..n-1}.
  std::vector<int> sorted = received;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < actual_total; ++i) EXPECT_EQ(sorted[i], i);
  // Per construction `reference` records the put order; note that with a
  // pre-put increment the global order may interleave with blocked puts,
  // so FIFO order is only guaranteed per producer.
  EXPECT_TRUE(fifo.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoModelCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ResourceModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResourceModelCheck, NeverExceedsPermitsUnderRandomLoad) {
  Scheduler scheduler;
  ProcessRunner runner(scheduler);
  Rng rng(GetParam());
  const std::size_t permits = 1 + rng.next_below(4);
  Resource resource(scheduler, permits);

  std::size_t in_use = 0;
  std::size_t max_in_use = 0;
  int completed = 0;
  auto worker = [&](std::uint64_t seed) -> Process {
    Rng local(seed);
    for (int i = 0; i < 20; ++i) {
      co_await delay(scheduler,
                     static_cast<Picoseconds>(local.next_below(40)));
      co_await resource.acquire();
      ++in_use;
      max_in_use = std::max(max_in_use, in_use);
      EXPECT_LE(in_use, permits);
      co_await delay(scheduler,
                     static_cast<Picoseconds>(1 + local.next_below(30)));
      --in_use;
      resource.release();
      ++completed;
    }
  };
  const int workers = 6;
  for (int w = 0; w < workers; ++w) {
    runner.spawn(worker(GetParam() * 31 + static_cast<std::uint64_t>(w)));
  }
  scheduler.run();
  runner.check();
  EXPECT_EQ(completed, workers * 20);
  EXPECT_EQ(resource.available(), permits);
  EXPECT_EQ(max_in_use, std::min<std::size_t>(permits, workers));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResourceModelCheck,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(SchedulerStress, ManyInterleavedTimersStayOrdered) {
  Scheduler scheduler;
  Rng rng(77);
  std::vector<Picoseconds> fire_times;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<Picoseconds>(rng.next_below(100000));
    scheduler.call_at(t, [&fire_times, &scheduler] {
      fire_times.push_back(scheduler.now());
    });
  }
  scheduler.run();
  ASSERT_EQ(fire_times.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
}

}  // namespace
}  // namespace spnhbm::sim
