// FaultPlan / FaultInjector tests: JSON round-trips, trigger semantics
// (window / every / probability), instance filters, determinism of the
// injected sequence, the disarmed fast path, and malformed-plan errors.
#include "spnhbm/fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "spnhbm/util/error.hpp"

namespace spnhbm::fault {
namespace {

TEST(FaultPlan, ParsesTheFullRuleSchema) {
  const FaultPlan plan = FaultPlan::from_json(R"({
    "seed": 42,
    "faults": [
      {"site": "hbm.access", "instance": "hbm/ch0", "kind": "stall",
       "every": 5, "duration_us": 20},
      {"site": "pcie.dma", "kind": "fail", "from": 2, "until": 4},
      {"site": "engine.submit", "kind": "corrupt", "probability": 0.25,
       "corrupt_mask": 8}
    ]
  })");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].site, "hbm.access");
  EXPECT_EQ(plan.rules[0].instance, "hbm/ch0");
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kStall);
  EXPECT_EQ(plan.rules[0].every, 5u);
  EXPECT_DOUBLE_EQ(plan.rules[0].duration_us, 20.0);
  EXPECT_TRUE(plan.rules[1].has_window);
  EXPECT_EQ(plan.rules[1].from, 2u);
  EXPECT_EQ(plan.rules[1].until, 4u);
  EXPECT_DOUBLE_EQ(plan.rules[2].probability, 0.25);
  EXPECT_EQ(plan.rules[2].corrupt_mask, 8);
}

TEST(FaultPlan, JsonRoundTripPreservesEveryField) {
  const std::string text = R"({
    "seed": 7,
    "faults": [
      {"site": "pe.launch", "instance": "pe1", "kind": "delay",
       "from": 1, "until": 3, "duration_us": 12.5},
      {"site": "engine.wait", "kind": "hang", "every": 2,
       "duration_us": 100}
    ]
  })";
  const FaultPlan first = FaultPlan::from_json(text);
  const FaultPlan second = FaultPlan::from_json(first.to_json());
  EXPECT_EQ(second.seed, first.seed);
  ASSERT_EQ(second.rules.size(), first.rules.size());
  for (std::size_t i = 0; i < first.rules.size(); ++i) {
    EXPECT_EQ(second.rules[i].site, first.rules[i].site);
    EXPECT_EQ(second.rules[i].instance, first.rules[i].instance);
    EXPECT_EQ(second.rules[i].kind, first.rules[i].kind);
    EXPECT_DOUBLE_EQ(second.rules[i].probability, first.rules[i].probability);
    EXPECT_EQ(second.rules[i].every, first.rules[i].every);
    EXPECT_EQ(second.rules[i].from, first.rules[i].from);
    EXPECT_EQ(second.rules[i].until, first.rules[i].until);
    EXPECT_EQ(second.rules[i].has_window, first.rules[i].has_window);
    EXPECT_DOUBLE_EQ(second.rules[i].duration_us, first.rules[i].duration_us);
    EXPECT_EQ(second.rules[i].corrupt_mask, first.rules[i].corrupt_mask);
  }
}

TEST(FaultPlan, RejectsMalformedDocuments) {
  EXPECT_THROW(FaultPlan::from_json("[]"), ParseError);
  EXPECT_THROW(FaultPlan::from_json(R"({"seed": 1})"), ParseError);
  // Missing site.
  EXPECT_THROW(FaultPlan::from_json(R"({"faults": [{"every": 2}]})"),
               ParseError);
  // Unknown kind.
  EXPECT_THROW(FaultPlan::from_json(
                   R"({"faults": [{"site": "x", "kind": "melt", "every": 2}]})"),
               ParseError);
  // No trigger.
  EXPECT_THROW(FaultPlan::from_json(R"({"faults": [{"site": "x"}]})"),
               ParseError);
  // Two triggers.
  EXPECT_THROW(
      FaultPlan::from_json(
          R"({"faults": [{"site": "x", "every": 2, "probability": 0.5}]})"),
      ParseError);
  // Degenerate window and probability.
  EXPECT_THROW(FaultPlan::from_json(
                   R"({"faults": [{"site": "x", "from": 3, "until": 3}]})"),
               ParseError);
  EXPECT_THROW(FaultPlan::from_json(
                   R"({"faults": [{"site": "x", "probability": 1.5}]})"),
               ParseError);
  EXPECT_THROW(FaultPlan::from_json(R"({"faults": [{"site": "x", "every": 0}]})"),
               ParseError);
}

TEST(FaultKindNames, RoundTrip) {
  for (const FaultKind kind :
       {FaultKind::kFail, FaultKind::kStall, FaultKind::kCorrupt,
        FaultKind::kDelay, FaultKind::kHang}) {
    EXPECT_EQ(fault_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(fault_kind_from_string("bogus"), ParseError);
}

TEST(FaultInjector, EveryTriggerFiresOnEveryNthOp) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = "site";
  rule.kind = FaultKind::kFail;
  rule.every = 3;
  plan.rules.push_back(rule);
  ScopedFaultPlan armed(plan);
  std::vector<std::size_t> fired;
  for (std::size_t op = 0; op < 9; ++op) {
    if (injector().decide("site", "a")) fired.push_back(op);
  }
  EXPECT_EQ(fired, (std::vector<std::size_t>{2, 5, 8}));
  EXPECT_EQ(injector().injected(), 3u);
}

TEST(FaultInjector, WindowTriggerFiresOnHalfOpenRange) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = "site";
  rule.kind = FaultKind::kStall;
  rule.has_window = true;
  rule.from = 1;
  rule.until = 3;
  rule.duration_us = 5.0;
  plan.rules.push_back(rule);
  ScopedFaultPlan armed(plan);
  std::vector<std::size_t> fired;
  for (std::size_t op = 0; op < 6; ++op) {
    const FaultDecision decision = injector().decide("site", "a");
    if (decision) {
      EXPECT_EQ(decision.kind, FaultKind::kStall);
      EXPECT_DOUBLE_EQ(decision.duration_us, 5.0);
      fired.push_back(op);
    }
  }
  EXPECT_EQ(fired, (std::vector<std::size_t>{1, 2}));
}

TEST(FaultInjector, InstanceFilterKeepsIndependentOpCounters) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = "site";
  rule.instance = "b";
  rule.kind = FaultKind::kFail;
  rule.has_window = true;
  rule.from = 0;
  rule.until = 1;
  plan.rules.push_back(rule);
  ScopedFaultPlan armed(plan);
  // Ops on instance "a" never fire and never advance "b"'s counter.
  EXPECT_FALSE(injector().decide("site", "a"));
  EXPECT_FALSE(injector().decide("site", "a"));
  EXPECT_TRUE(injector().decide("site", "b"));   // b's op 0
  EXPECT_FALSE(injector().decide("site", "b"));  // b's op 1
}

TEST(FaultInjector, ProbabilityTriggerIsDeterministicInTheSeed) {
  FaultPlan plan;
  plan.seed = 99;
  FaultRule rule;
  rule.site = "site";
  rule.kind = FaultKind::kFail;
  rule.probability = 0.5;
  plan.rules.push_back(rule);

  const auto run = [&plan] {
    ScopedFaultPlan armed(plan);
    std::vector<bool> outcomes;
    for (std::size_t op = 0; op < 64; ++op) {
      outcomes.push_back(static_cast<bool>(injector().decide("site", "a")));
    }
    return outcomes;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // Not degenerate: some ops fire, some do not.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  // A different seed produces a different (still deterministic) sequence.
  plan.seed = 100;
  EXPECT_NE(run(), first);
}

TEST(FaultInjector, LogRecordsTheInjectedSequence) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = "site";
  rule.kind = FaultKind::kCorrupt;
  rule.every = 2;
  plan.rules.push_back(rule);
  ScopedFaultPlan armed(plan);
  for (std::size_t op = 0; op < 4; ++op) injector().decide("site", "chan");
  const std::vector<InjectedFault> log = injector().log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].site, "site");
  EXPECT_EQ(log[0].instance, "chan");
  EXPECT_EQ(log[0].op_index, 1u);
  EXPECT_EQ(log[0].kind, FaultKind::kCorrupt);
  EXPECT_EQ(log[1].op_index, 3u);
}

TEST(FaultInjector, DisarmedDecidesNothing) {
  injector().disarm();
  EXPECT_FALSE(injector().armed());
  EXPECT_FALSE(injector().decide("site", "a"));
  {
    FaultPlan plan;
    FaultRule rule;
    rule.site = "site";
    rule.kind = FaultKind::kFail;
    rule.every = 1;
    plan.rules.push_back(rule);
    ScopedFaultPlan armed(plan);
    EXPECT_TRUE(injector().armed());
    EXPECT_TRUE(injector().decide("site", "a"));
  }
  // ScopedFaultPlan disarms on scope exit.
  EXPECT_FALSE(injector().armed());
  EXPECT_FALSE(injector().decide("site", "a"));
}

TEST(FaultInjector, RearmResetsCountersAndLog) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = "site";
  rule.kind = FaultKind::kFail;
  rule.has_window = true;
  rule.from = 0;
  rule.until = 1;
  plan.rules.push_back(rule);
  ScopedFaultPlan armed(plan);
  EXPECT_TRUE(injector().decide("site", "a"));
  EXPECT_FALSE(injector().decide("site", "a"));
  injector().arm(plan);  // op counters restart: op 0 fires again
  EXPECT_TRUE(injector().decide("site", "a"));
  EXPECT_EQ(injector().injected(), 1u);
  EXPECT_EQ(injector().log().size(), 1u);
}

}  // namespace
}  // namespace spnhbm::fault
