#include "spnhbm/network/streaming.hpp"

#include <gtest/gtest.h>

#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::network {
namespace {

compiler::DatapathModule compile_nips(std::size_t variables) {
  const auto model = workload::make_nips_model(variables);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  return compiler::compile_spn(model.spn, *backend);
}

TEST(NetworkLink, GoodputMatchesSevenPaper) {
  sim::Scheduler scheduler;
  NetworkLink link(scheduler);
  // [7]: 99.078 Gbit/s goodput on a 100G link with jumbo frames.
  EXPECT_NEAR(link.goodput().as_bytes_per_second() * 8 / 1e9, 99.07, 0.05);
}

TEST(NetworkLink, TimedSendMatchesLineRate) {
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  NetworkLink link(scheduler);
  const std::uint64_t payload = 90'000'000;  // 10k jumbo frames
  runner.spawn([&]() -> sim::Process { co_await link.send(payload); });
  scheduler.run();
  runner.check();
  const double goodput_gbps =
      static_cast<double>(payload) * 8 / 1e9 / to_seconds(scheduler.now());
  EXPECT_NEAR(goodput_gbps, 99.07, 0.1);
  EXPECT_EQ(link.payload_bytes_sent(), payload);
  EXPECT_GT(link.wire_bytes_sent(), payload);
}

TEST(NetworkLink, FrameOverheadChargedPerFrame) {
  // Payloads that are not a multiple of frame_payload_bytes still pay the
  // full per-frame overhead on the final partial frame: wire bytes must be
  // payload + ceil(payload / frame_payload) * overhead, never a
  // pro-rated fraction of it.
  const auto wire_bytes_for = [](std::uint64_t payload) {
    sim::Scheduler scheduler;
    sim::ProcessRunner runner(scheduler);
    NetworkLink link(scheduler);
    runner.spawn([&]() -> sim::Process { co_await link.send(payload); });
    scheduler.run();
    runner.check();
    EXPECT_EQ(link.payload_bytes_sent(), payload);
    return link.wire_bytes_sent();
  };
  const LinkConfig defaults;
  const std::uint64_t frame = defaults.frame_payload_bytes;    // 9000
  const std::uint64_t overhead = defaults.frame_overhead_bytes;  // 84

  // Exact multiple: k full frames.
  EXPECT_EQ(wire_bytes_for(3 * frame), 3 * frame + 3 * overhead);
  // Partial tail frame: the 1234 trailing bytes cost a whole overhead.
  EXPECT_EQ(wire_bytes_for(2 * frame + 1234),
            2 * frame + 1234 + 3 * overhead);
  // Sub-frame payload: one frame, one overhead.
  EXPECT_EQ(wire_bytes_for(1), 1 + overhead);
  // One byte over a full frame spills into a second frame.
  EXPECT_EQ(wire_bytes_for(frame + 1), frame + 1 + 2 * overhead);
}

TEST(NetworkLink, PartialFrameCostsTimeProportionalToWireBytes) {
  // The occupancy model must charge the wire for overhead bytes too: a
  // send of half a frame takes (payload + overhead) / line_rate seconds.
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  NetworkLink link(scheduler);
  const std::uint64_t payload = 4500;
  runner.spawn([&]() -> sim::Process { co_await link.send(payload); });
  scheduler.run();
  runner.check();
  const double expected_seconds =
      static_cast<double>(payload + link.config().frame_overhead_bytes) /
      link.config().line_rate.as_bytes_per_second();
  EXPECT_NEAR(to_seconds(scheduler.now()), expected_seconds,
              expected_seconds * 1e-9);
}

TEST(NetworkLink, SmallFramesLoseGoodput) {
  sim::Scheduler scheduler;
  LinkConfig small;
  small.frame_payload_bytes = 256;
  NetworkLink link(scheduler, small);
  EXPECT_LT(link.goodput_fraction(), 0.8);
}

TEST(StreamingPipeline, Nips80CeilingMatchesPaper) {
  // Paper §V-D: 99.078 Gbit/s over 88 B/sample -> 140,748,580 samples/s.
  const auto module = compile_nips(80);
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  StreamingPipeline pipeline(runner, module);
  EXPECT_EQ(pipeline.wire_bytes_per_sample(), 88u);
  EXPECT_NEAR(pipeline.line_rate_ceiling(), 140.7e6, 0.3e6);
}

TEST(StreamingPipeline, SimulatedRateApproachesCeiling) {
  const auto module = compile_nips(80);
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  StreamingPipeline pipeline(runner, module);
  const auto stats = pipeline.run(2'000'000);
  EXPECT_GT(stats.samples_per_second, 0.97 * pipeline.line_rate_ceiling());
  EXPECT_LE(stats.samples_per_second, pipeline.line_rate_ceiling() * 1.001);
  EXPECT_GT(stats.ingress_utilisation, 0.95);
}

TEST(StreamingPipeline, SmallModelsNeedReplication) {
  // NIPS10: 18 wire bytes -> link ceiling ~688 Ms/s > one 225 MHz
  // datapath; one replica is datapath-bound, four reach line rate.
  const auto module = compile_nips(10);
  const auto rate_with_replicas = [&](std::size_t replicas) {
    sim::Scheduler scheduler;
    sim::ProcessRunner runner(scheduler);
    StreamingConfig config;
    config.replicas = replicas;
    StreamingPipeline pipeline(runner, module, config);
    return pipeline.run(2'000'000).samples_per_second;
  };
  const double one = rate_with_replicas(1);
  const double four = rate_with_replicas(4);
  EXPECT_NEAR(one, 225e6, 0.05 * 225e6);   // datapath-bound
  EXPECT_GT(four, 600e6);                  // approaching the link ceiling
}

TEST(StreamingPipeline, BeatsHbmDesignByThePaperMargin) {
  // Paper: the streaming architecture delivers ~17% more NIPS80
  // throughput than the HBM design's 116.6 Ms/s (140.7 vs 116.6). Our HBM
  // simulation lands a bit higher, so assert the ordering and a sane
  // ratio corridor instead of the exact 17%.
  const auto module = compile_nips(80);
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  StreamingPipeline pipeline(runner, module);
  const double streaming = pipeline.run(2'000'000).samples_per_second;
  EXPECT_GT(streaming, 116.6e6);  // beats the paper's HBM measurement
  EXPECT_NEAR(streaming / 116.6e6, 1.17, 0.08);
}

TEST(StreamingPipeline, RejectsBadConfig) {
  const auto module = compile_nips(10);
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  StreamingConfig config;
  config.replicas = 0;
  EXPECT_THROW(StreamingPipeline(runner, module, config), std::logic_error);
}

}  // namespace
}  // namespace spnhbm::network
