#include "spnhbm/compiler/serialize.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::compiler {
namespace {

DatapathModule compile_test_module() {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  return compile_spn(model.spn, *backend);
}

TEST(Serialize, RoundTripPreservesStructure) {
  const auto original = compile_test_module();
  std::stringstream stream;
  save_design(original, stream);
  const auto loaded = load_design(stream);

  EXPECT_EQ(loaded.input_features(), original.input_features());
  EXPECT_EQ(loaded.pipeline_depth(), original.pipeline_depth());
  EXPECT_EQ(loaded.result_op(), original.result_op());
  ASSERT_EQ(loaded.ops().size(), original.ops().size());
  for (std::size_t i = 0; i < original.ops().size(); ++i) {
    EXPECT_EQ(loaded.ops()[i].kind, original.ops()[i].kind);
    EXPECT_EQ(loaded.ops()[i].lhs, original.ops()[i].lhs);
    EXPECT_EQ(loaded.ops()[i].stage, original.ops()[i].stage);
    EXPECT_EQ(loaded.ops()[i].constant, original.ops()[i].constant);
  }
  ASSERT_EQ(loaded.tables().size(), original.tables().size());
  EXPECT_EQ(loaded.balance_register_stages(),
            original.balance_register_stages());
}

TEST(Serialize, RoundTripPreservesSemantics) {
  const auto original = compile_test_module();
  std::stringstream stream;
  save_design(original, stream);
  const auto loaded = load_design(stream);

  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> sample(10);
    for (auto& b : sample) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_DOUBLE_EQ(loaded.evaluate(*backend, sample),
                     original.evaluate(*backend, sample));
  }
}

TEST(Serialize, FileRoundTrip) {
  const auto original = compile_test_module();
  const std::string path = "/tmp/spnhbm_test_design.bin";
  save_design_file(original, path);
  const auto loaded = load_design_file(path);
  EXPECT_EQ(loaded.ops().size(), original.ops().size());
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream stream;
  stream.write("NOPE", 4);
  stream.write("\0\0\0\0\0\0\0\0", 8);
  EXPECT_THROW(load_design(stream), ParseError);
}

TEST(Serialize, RejectsTruncatedFile) {
  const auto original = compile_test_module();
  std::stringstream stream;
  save_design(original, stream);
  const std::string full = stream.str();
  for (const std::size_t cut :
       {full.size() / 4, full.size() / 2, full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(load_design(truncated), ParseError) << "cut=" << cut;
  }
}

TEST(Serialize, RejectsCorruptedOpOrder) {
  const auto original = compile_test_module();
  std::stringstream stream;
  save_design(original, stream);
  std::string bytes = stream.str();
  // Corrupt the first non-lookup op's lhs to a forward reference. Header is
  // 24 bytes + 8 bytes op count; each op is 9*4 + 8 = 44 bytes. Find a mul
  // op (kind != 0) and bump its lhs to a huge id.
  const std::size_t ops_base = 24 + 8;
  const std::size_t op_size = 44;
  for (std::size_t i = 0;; ++i) {
    const std::size_t offset = ops_base + i * op_size;
    std::uint32_t kind = 0;
    std::memcpy(&kind, bytes.data() + offset, 4);
    if (kind != 0) {  // not a histogram lookup
      const std::uint32_t bogus = 0x7FFFFFFF;
      std::memcpy(bytes.data() + offset + 4, &bogus, 4);
      break;
    }
  }
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_design(corrupted), ParseError);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_design_file("/nonexistent/path/design.bin"), Error);
}

}  // namespace
}  // namespace spnhbm::compiler
