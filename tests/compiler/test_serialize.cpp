#include "spnhbm/compiler/serialize.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::compiler {
namespace {

DatapathModule compile_test_module() {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  return compile_spn(model.spn, *backend);
}

TEST(Serialize, RoundTripPreservesStructure) {
  const auto original = compile_test_module();
  std::stringstream stream;
  save_design(original, stream);
  const auto loaded = load_design(stream);

  EXPECT_EQ(loaded.input_features(), original.input_features());
  EXPECT_EQ(loaded.pipeline_depth(), original.pipeline_depth());
  EXPECT_EQ(loaded.result_op(), original.result_op());
  ASSERT_EQ(loaded.ops().size(), original.ops().size());
  for (std::size_t i = 0; i < original.ops().size(); ++i) {
    EXPECT_EQ(loaded.ops()[i].kind, original.ops()[i].kind);
    EXPECT_EQ(loaded.ops()[i].lhs, original.ops()[i].lhs);
    EXPECT_EQ(loaded.ops()[i].stage, original.ops()[i].stage);
    EXPECT_EQ(loaded.ops()[i].constant, original.ops()[i].constant);
  }
  ASSERT_EQ(loaded.tables().size(), original.tables().size());
  EXPECT_EQ(loaded.balance_register_stages(),
            original.balance_register_stages());
}

TEST(Serialize, RoundTripPreservesSemantics) {
  const auto original = compile_test_module();
  std::stringstream stream;
  save_design(original, stream);
  const auto loaded = load_design(stream);

  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> sample(10);
    for (auto& b : sample) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_DOUBLE_EQ(loaded.evaluate(*backend, sample),
                     original.evaluate(*backend, sample));
  }
}

TEST(Serialize, FileRoundTrip) {
  const auto original = compile_test_module();
  const std::string path = "/tmp/spnhbm_test_design.bin";
  save_design_file(original, path);
  const auto loaded = load_design_file(path);
  EXPECT_EQ(loaded.ops().size(), original.ops().size());
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream stream;
  stream.write("NOPE", 4);
  stream.write("\0\0\0\0\0\0\0\0", 8);
  EXPECT_THROW(load_design(stream), ParseError);
}

TEST(Serialize, RejectsTruncatedFile) {
  const auto original = compile_test_module();
  std::stringstream stream;
  save_design(original, stream);
  const std::string full = stream.str();
  for (const std::size_t cut :
       {full.size() / 4, full.size() / 2, full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(load_design(truncated), ParseError) << "cut=" << cut;
  }
}

TEST(Serialize, RejectsCorruptedOpOrder) {
  const auto original = compile_test_module();
  std::stringstream stream;
  save_design(original, stream);
  std::string bytes = stream.str();
  // Corrupt the first non-lookup op's lhs to a forward reference. Header is
  // 24 bytes + 8 bytes op count; each op is 9*4 + 8 = 44 bytes. Find a mul
  // op (kind != 0) and bump its lhs to a huge id.
  const std::size_t ops_base = 24 + 8;
  const std::size_t op_size = 44;
  for (std::size_t i = 0;; ++i) {
    const std::size_t offset = ops_base + i * op_size;
    std::uint32_t kind = 0;
    std::memcpy(&kind, bytes.data() + offset, 4);
    if (kind != 0) {  // not a histogram lookup
      const std::uint32_t bogus = 0x7FFFFFFF;
      std::memcpy(bytes.data() + offset + 4, &bogus, 4);
      break;
    }
  }
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_design(corrupted), ParseError);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_design_file("/nonexistent/path/design.bin"), Error);
}

TEST(Serialize, JointModulesStillSaveAsV1) {
  // Joint modules with derived (all-zero) default evidence must keep the
  // v1 layout byte-for-byte: design files and content hashes from before
  // the query-generic datapath stay stable.
  const auto original = compile_test_module();
  ASSERT_EQ(original.query(), QueryKind::kJoint);
  std::stringstream stream;
  save_design(original, stream);
  const std::string bytes = stream.str();
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, 4);
  EXPECT_EQ(version, 1u);
  const auto loaded = load_design(stream);
  EXPECT_EQ(loaded.query(), QueryKind::kJoint);
}

TEST(Serialize, QueryModulesRoundTripThroughV2) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  for (const QueryKind query : {QueryKind::kMarginal, QueryKind::kMpe}) {
    CompileOptions options;
    options.query = query;
    options.input_domain = kMissingByte;
    const auto original = compile_spn(model.spn, *backend, options);
    std::stringstream stream;
    save_design(original, stream);
    const std::string bytes = stream.str();
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + 4, 4);
    EXPECT_EQ(version, 2u) << query_kind_name(query);

    const auto loaded = load_design(stream);
    EXPECT_EQ(loaded.query(), query);
    EXPECT_EQ(loaded.default_evidence(), original.default_evidence());
    ASSERT_EQ(loaded.tables().size(), original.tables().size());

    // Semantics survive, reserved slot included.
    Rng rng(19);
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<std::uint8_t> sample(10);
      for (auto& b : sample) {
        b = rng.next_below(4) == 0
                ? kMissingByte
                : static_cast<std::uint8_t>(rng.next_below(kMissingByte));
      }
      EXPECT_DOUBLE_EQ(loaded.evaluate(*backend, sample),
                       original.evaluate(*backend, sample));
    }
  }
}

TEST(Serialize, RejectsCorruptedQueryKind) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  CompileOptions options;
  options.query = QueryKind::kMarginal;
  options.input_domain = kMissingByte;
  const auto original = compile_spn(model.spn, *backend, options);
  std::stringstream stream;
  save_design(original, stream);
  std::string bytes = stream.str();
  // v2 layout: magic, version, then the query-kind word at offset 8.
  const std::uint32_t bogus = 9;
  std::memcpy(bytes.data() + 8, &bogus, 4);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_design(corrupted), ParseError);
}

}  // namespace
}  // namespace spnhbm::compiler
