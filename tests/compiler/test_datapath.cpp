#include "spnhbm/compiler/datapath.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/spn/text_format.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::compiler {
namespace {

spn::Spn mixture_spn() {
  return spn::parse_spn(R"(
    Sum(0.3*Product(Histogram(V0|[0,64,128,256];[0.0078125,0.0078125,0.0])
                  * Histogram(V1|[0,128,256];[0.0078125,0.0]))
      + 0.7*Product(Histogram(V0|[0,64,256];[0.0078125,0.00260416666666666652])
                  * Histogram(V1|[0,128,256];[0.00390625,0.00390625])))
  )");
}

TEST(Compiler, LowersMixtureToExpectedOps) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compile_spn(mixture_spn(), *backend);
  EXPECT_EQ(module.count_ops(OpKind::kHistogramLookup), 4u);
  EXPECT_EQ(module.count_ops(OpKind::kMul), 2u);       // one per product
  EXPECT_EQ(module.count_ops(OpKind::kConstMul), 2u);  // one per sum edge
  EXPECT_EQ(module.count_ops(OpKind::kAdd), 1u);
  EXPECT_EQ(module.input_features(), 2u);
  EXPECT_EQ(module.initiation_interval(), 1u);
}

TEST(Compiler, PipelineDepthCoversFullPath) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compile_spn(mixture_spn(), *backend);
  // hist(2) -> mul(5) -> cmul(5) -> add(4) along the critical path.
  EXPECT_EQ(module.pipeline_depth(), 2u + 5u + 5u + 4u);
}

TEST(Compiler, StagesRespectDependencies) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compile_spn(mixture_spn(), *backend);
  for (const auto& op : module.ops()) {
    if (op.kind == OpKind::kHistogramLookup) {
      EXPECT_EQ(op.stage, 0u);
      continue;
    }
    const auto& lhs = module.ops()[op.lhs];
    EXPECT_GE(op.stage, lhs.stage + lhs.latency);
    if (op.rhs != kNoOp) {
      const auto& rhs = module.ops()[op.rhs];
      EXPECT_GE(op.stage, rhs.stage + rhs.latency);
      // Balance registers close exactly the stage gap.
      EXPECT_EQ(op.stage - (rhs.stage + rhs.latency), op.rhs_delay);
    }
    EXPECT_EQ(op.stage - (lhs.stage + lhs.latency), op.lhs_delay);
  }
}

TEST(Compiler, EvaluateMatchesReferenceInFloat64) {
  const auto backend = arith::make_float64_backend();
  spn::Spn spn = mixture_spn();
  const auto module = compile_spn(spn, *backend);
  spn::Evaluator reference(spn);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint8_t sample[2] = {static_cast<std::uint8_t>(rng.next_below(256)),
                              static_cast<std::uint8_t>(rng.next_below(256))};
    EXPECT_DOUBLE_EQ(module.evaluate(*backend, sample),
                     reference.evaluate_bytes(sample));
  }
}

TEST(Compiler, CfpEvaluationTracksReferenceClosely) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  spn::RandomSpnConfig config;
  config.variables = 10;
  config.seed = 77;
  const spn::Spn spn = spn::make_random_spn(config);
  const auto module = compile_spn(spn, *backend);
  spn::Evaluator reference(spn);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> sample(10);
    for (auto& b : sample) b = static_cast<std::uint8_t>(rng.next_below(256));
    const double want = reference.evaluate_bytes(sample);
    const double got = module.evaluate(*backend, sample);
    if (want > 0) {
      EXPECT_NEAR(got / want, 1.0, 1e-4);
    }
  }
}

TEST(Compiler, LnsEvaluationTracksReference) {
  const auto backend = arith::make_lns_backend(arith::paper_lns_format());
  spn::RandomSpnConfig config;
  config.variables = 8;
  config.seed = 78;
  const spn::Spn spn = spn::make_random_spn(config);
  const auto module = compile_spn(spn, *backend);
  spn::Evaluator reference(spn);
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> sample(8);
    for (auto& b : sample) b = static_cast<std::uint8_t>(rng.next_below(256));
    const double want = reference.evaluate_bytes(sample);
    const double got = module.evaluate(*backend, sample);
    if (want > 0) {
      EXPECT_NEAR(got / want, 1.0, 1e-3);
    }
  }
}

TEST(Compiler, DeduplicatesIdenticalTables) {
  // Two identical histogram leaves over the same variable share one LUT.
  spn::Spn spn;
  const auto h0 = spn.add_histogram(0, {0, 256}, {1.0 / 256});
  const auto h1 = spn.add_histogram(1, {0, 256}, {1.0 / 256});
  const auto h0_again = spn.add_histogram(0, {0, 256}, {1.0 / 256});
  const auto h1_b = spn.add_histogram(1, {0, 128, 256}, {0.005, 0.0028125});
  const auto pa = spn.add_product({h0, h1});
  const auto pb = spn.add_product({h0_again, h1_b});
  spn.set_root(spn.add_sum({pa, pb}, {0.5, 0.5}));
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto dedup = compile_spn(spn, *backend);
  EXPECT_EQ(dedup.tables().size(), 3u);

  CompileOptions no_dedup;
  no_dedup.deduplicate_tables = false;
  EXPECT_EQ(compile_spn(spn, *backend, no_dedup).tables().size(), 4u);
}

TEST(Compiler, RejectsNonHistogramLeaves) {
  spn::Spn spn;
  spn.set_root(spn.add_gaussian(0, 0.0, 1.0));
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  EXPECT_THROW(compile_spn(spn, *backend), Error);
}

TEST(Compiler, RejectsInvalidSpn) {
  spn::Spn spn;
  const auto h0 = spn.add_histogram(0, {0, 256}, {1.0 / 256});
  const auto h1 = spn.add_histogram(1, {0, 256}, {1.0 / 256});
  spn.set_root(spn.add_sum({h0, h1}, {0.5, 0.5}));  // incomplete sum
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  EXPECT_THROW(compile_spn(spn, *backend), ValidationError);
}

TEST(Compiler, BalancedTreesKeepDepthLogarithmic) {
  // A product over 32 leaves must schedule as a log-depth tree.
  spn::Spn spn;
  std::vector<spn::NodeId> leaves;
  for (std::uint32_t v = 0; v < 32; ++v) {
    leaves.push_back(spn.add_histogram(v, {0, 256}, {1.0 / 256}));
  }
  spn.set_root(spn.add_product(leaves));
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compile_spn(spn, *backend);
  EXPECT_EQ(module.count_ops(OpKind::kMul), 31u);
  // Depth = hist (2) + 5 tree levels x mul (5).
  EXPECT_EQ(module.pipeline_depth(), 2u + 5u * 5u);
}

TEST(Compiler, FullZooCompilesAndVerifies) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  for (const std::size_t size : workload::nips_benchmark_sizes()) {
    const auto model = workload::make_nips_model(size);
    const auto module = compile_spn(model.spn, *backend);
    EXPECT_EQ(module.input_features(), size);
    EXPECT_GT(module.pipeline_depth(), 0u);

    spn::Evaluator reference(model.spn);
    Rng rng(size);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<std::uint8_t> sample(size);
      for (auto& b : sample) b = static_cast<std::uint8_t>(rng.next_below(32));
      const double want = reference.evaluate_bytes(sample);
      const double got = module.evaluate(*backend, sample);
      // Joint densities below the CFP exponent range legitimately flush to
      // zero (the published motivation for the LNS format on deep SPNs).
      if (want > 1e-30) {
        EXPECT_NEAR(got / want, 1.0, 1e-3) << model.name;
      }
    }
  }
}

TEST(Compiler, ReportMentionsKeyFigures) {
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compile_spn(mixture_spn(), *backend);
  const std::string report = module.report();
  EXPECT_NE(report.find("II=1"), std::string::npos);
  EXPECT_NE(report.find("pipeline depth"), std::string::npos);
}

}  // namespace
}  // namespace spnhbm::compiler
