// Query-generic datapath tests: the marginal and MPE lowerings must be
// byte-identical to the reference queries over seeded random SPNs with
// random missingness, and a sparse SampleView must evaluate bit-equal to
// its densified twin. The CSR codec's validation (truncation, ordering,
// bounds) is the front door every transport relies on, so it is tested
// exhaustively here.
#include "spnhbm/compiler/datapath.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/queries.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::compiler {
namespace {

spn::Spn random_spn(std::uint64_t seed, std::size_t variables = 8) {
  spn::RandomSpnConfig config;
  config.variables = variables;
  // Non-joint datapaths reserve byte 255 for "missing", so the leaf
  // domain must stop short of it.
  config.leaf_domain = kMissingByte;
  config.seed = seed;
  return spn::make_random_spn(config);
}

CompileOptions options_for(QueryKind query) {
  CompileOptions options;
  options.query = query;
  options.input_domain = kMissingByte;
  return options;
}

/// A byte sample with random missingness plus its double-domain twin
/// (kMissingByte <-> NaN) for the reference evaluator.
struct MissingSample {
  std::vector<std::uint8_t> bytes;
  std::vector<double> doubles;
};

MissingSample random_missing_sample(Rng& rng, std::size_t variables) {
  MissingSample sample;
  sample.bytes.resize(variables);
  sample.doubles.resize(variables);
  for (std::size_t v = 0; v < variables; ++v) {
    if (rng.next_below(3) == 0) {
      sample.bytes[v] = kMissingByte;
      sample.doubles[v] = spn::missing_value();
    } else {
      sample.bytes[v] = static_cast<std::uint8_t>(rng.next_below(kMissingByte));
      sample.doubles[v] = static_cast<double>(sample.bytes[v]);
    }
  }
  return sample;
}

TEST(QueryDatapath, MarginalMatchesReferenceBitForBit) {
  const auto backend = arith::make_float64_backend();
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const spn::Spn spn = random_spn(seed);
    const auto module =
        compile_spn(spn, *backend, options_for(QueryKind::kMarginal));
    EXPECT_EQ(module.query(), QueryKind::kMarginal);
    spn::Evaluator reference(spn);
    Rng rng(seed * 7);
    for (int trial = 0; trial < 100; ++trial) {
      const MissingSample sample = random_missing_sample(rng, 8);
      // Float64 lowering is the reference arithmetic: bit-identical, not
      // merely close.
      EXPECT_DOUBLE_EQ(module.evaluate(*backend, sample.bytes),
                       reference.evaluate(sample.doubles))
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(QueryDatapath, MpeMatchesMaxProductReferenceBitForBit) {
  const auto backend = arith::make_float64_backend();
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const spn::Spn spn = random_spn(seed);
    const auto module =
        compile_spn(spn, *backend, options_for(QueryKind::kMpe));
    EXPECT_EQ(module.query(), QueryKind::kMpe);
    EXPECT_GT(module.count_ops(OpKind::kMax), 0u);
    EXPECT_EQ(module.count_ops(OpKind::kAdd), 0u);  // max-product: no adds
    Rng rng(seed * 7);
    for (int trial = 0; trial < 100; ++trial) {
      const MissingSample sample = random_missing_sample(rng, 8);
      EXPECT_DOUBLE_EQ(
          module.evaluate(*backend, sample.bytes),
          spn::max_product_value(spn, sample.doubles, kMissingByte))
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(QueryDatapath, FullyObservedMarginalEqualsJoint) {
  // With no missing variables the marginal datapath must reproduce the
  // joint datapath exactly: the reserved slot is never read.
  const auto backend = arith::make_float64_backend();
  const spn::Spn spn = random_spn(31);
  const auto joint =
      compile_spn(spn, *backend, options_for(QueryKind::kJoint));
  const auto marginal =
      compile_spn(spn, *backend, options_for(QueryKind::kMarginal));
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> sample(8);
    for (auto& b : sample) {
      b = static_cast<std::uint8_t>(rng.next_below(kMissingByte));
    }
    EXPECT_DOUBLE_EQ(marginal.evaluate(*backend, sample),
                     joint.evaluate(*backend, sample));
  }
}

TEST(QueryDatapath, AllMissingMarginalIsOne) {
  const auto backend = arith::make_float64_backend();
  const spn::Spn spn = random_spn(41);
  const auto module =
      compile_spn(spn, *backend, options_for(QueryKind::kMarginal));
  const std::vector<std::uint8_t> sample(8, kMissingByte);
  EXPECT_DOUBLE_EQ(module.evaluate(*backend, sample), 1.0);
}

TEST(QueryDatapath, NonJointRejectsFullByteDomain) {
  // input_domain 256 leaves no reserved slot for kMissingByte.
  const auto backend = arith::make_float64_backend();
  spn::RandomSpnConfig config;
  config.variables = 4;
  config.seed = 51;
  const spn::Spn spn = spn::make_random_spn(config);
  CompileOptions options;
  options.query = QueryKind::kMarginal;  // input_domain stays 256
  EXPECT_THROW(compile_spn(spn, *backend, options), std::logic_error);
}

TEST(QueryDatapath, DefaultEvidenceDerivesFromTheQuery) {
  const auto backend = arith::make_float64_backend();
  const spn::Spn spn = random_spn(61);
  const auto joint =
      compile_spn(spn, *backend, options_for(QueryKind::kJoint));
  const auto marginal =
      compile_spn(spn, *backend, options_for(QueryKind::kMarginal));
  ASSERT_EQ(joint.default_evidence().size(), 8u);
  ASSERT_EQ(marginal.default_evidence().size(), 8u);
  for (std::size_t v = 0; v < 8; ++v) {
    EXPECT_EQ(joint.default_evidence()[v], 0);
    EXPECT_EQ(marginal.default_evidence()[v], kMissingByte);
  }
}

TEST(QueryDatapath, SparseViewEvaluatesBitEqualToDense) {
  const auto backend = arith::make_float64_backend();
  const spn::Spn spn = random_spn(71);
  const auto module =
      compile_spn(spn, *backend, options_for(QueryKind::kMarginal));
  Rng rng(71);
  for (int trial = 0; trial < 100; ++trial) {
    const MissingSample sample = random_missing_sample(rng, 8);
    SparseBatch batch = sparse_from_dense(sample.bytes, 8,
                                          module.default_evidence());
    ASSERT_EQ(batch.sample_count(), 1u);
    const SampleView sparse = batch.view(0, module.default_evidence());
    const SampleView dense = SampleView::dense(sample.bytes);
    EXPECT_DOUBLE_EQ(module.evaluate(*backend, sparse),
                     module.evaluate(*backend, dense))
        << "trial " << trial;
  }
}

// --- CSR codec ----------------------------------------------------------

SparseBatch two_sample_batch() {
  SparseBatch batch;
  batch.features = 10;
  const std::uint16_t i0[] = {1, 4, 9};
  const std::uint8_t v0[] = {7, 0, 200};
  batch.add_sample(i0, v0);
  batch.add_sample({}, {});  // fully-unobserved sample
  return batch;
}

TEST(SparseCodec, EncodeDecodeRoundtrip) {
  const SparseBatch batch = two_sample_batch();
  const auto stream = encode_sparse(batch);
  EXPECT_EQ(stream.size(), batch.encoded_bytes());
  const SparseBatch decoded = decode_sparse(stream, 10, 2);
  EXPECT_EQ(decoded.features, 10u);
  EXPECT_EQ(decoded.offsets, batch.offsets);
  EXPECT_EQ(decoded.indices, batch.indices);
  EXPECT_EQ(decoded.values, batch.values);
}

TEST(SparseCodec, DensifyInvertsSparseFromDense) {
  const std::vector<std::uint8_t> defaults(6, 0xFF);
  std::vector<std::uint8_t> rows = {1, 0xFF, 3, 0xFF, 0xFF, 6,  //
                                    0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  const SparseBatch batch = sparse_from_dense(rows, 6, defaults);
  EXPECT_EQ(batch.sample_count(), 2u);
  EXPECT_EQ(batch.active_total(), 3u);
  EXPECT_EQ(batch.densify(defaults), rows);
}

TEST(SparseCodec, RejectsTruncatedStream) {
  const auto stream = encode_sparse(two_sample_batch());
  for (const std::size_t cut : {stream.size() - 1, stream.size() / 2,
                                std::size_t{1}}) {
    const std::vector<std::uint8_t> truncated(stream.begin(),
                                              stream.begin() + cut);
    EXPECT_THROW(decode_sparse(truncated, 10, 2), ParseError) << cut;
  }
}

TEST(SparseCodec, RejectsTrailingBytes) {
  auto stream = encode_sparse(two_sample_batch());
  stream.push_back(0);
  EXPECT_THROW(decode_sparse(stream, 10, 2), ParseError);
}

TEST(SparseCodec, RejectsWrongSampleCount) {
  const auto stream = encode_sparse(two_sample_batch());
  EXPECT_THROW(decode_sparse(stream, 10, 1), ParseError);
  EXPECT_THROW(decode_sparse(stream, 10, 3), ParseError);
}

TEST(SparseCodec, RejectsOutOfRangeIndex) {
  // Hand-build: one sample, one pair with index == features.
  const std::vector<std::uint8_t> stream = {1, 0,      // active_count
                                            10, 0, 5};  // index 10, value 5
  EXPECT_THROW(decode_sparse(stream, 10, 1), ParseError);
}

TEST(SparseCodec, RejectsDuplicateAndDecreasingIndices) {
  const std::vector<std::uint8_t> duplicate = {2, 0,  //
                                               3, 0, 1, 3, 0, 2};
  EXPECT_THROW(decode_sparse(duplicate, 10, 1), ParseError);
  const std::vector<std::uint8_t> decreasing = {2, 0,  //
                                                4, 0, 1, 2, 0, 2};
  EXPECT_THROW(decode_sparse(decreasing, 10, 1), ParseError);
}

TEST(SparseCodec, AddSampleValidates) {
  SparseBatch batch;
  batch.features = 4;
  const std::uint16_t bad_order[] = {2, 1};
  const std::uint8_t two_values[] = {1, 2};
  EXPECT_THROW(batch.add_sample(bad_order, two_values), std::logic_error);
  const std::uint16_t out_of_range[] = {4};
  const std::uint8_t one_value[] = {1};
  EXPECT_THROW(batch.add_sample(out_of_range, one_value), std::logic_error);
  const std::uint16_t mismatched[] = {0, 1};
  EXPECT_THROW(batch.add_sample(mismatched, one_value), std::logic_error);
}

}  // namespace
}  // namespace spnhbm::compiler
