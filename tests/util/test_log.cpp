#include "spnhbm/util/log.hpp"

#include <gtest/gtest.h>

namespace spnhbm {
namespace {

TEST(ParseLogLevel, AcceptsNamesAnyCase) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST(ParseLogLevel, AcceptsNumericLevels) {
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("1"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("2"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("4"), LogLevel::kOff);
}

TEST(ParseLogLevel, RejectsGarbage) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("5"), std::nullopt);
  EXPECT_EQ(parse_log_level("-1"), std::nullopt);
  EXPECT_EQ(parse_log_level("1x"), std::nullopt);
}

TEST(LogPrefix, CarriesTimestampLevelThreadAndComponent) {
  const std::string prefix = format_log_prefix(LogLevel::kInfo, "server");
  // 2026-08-05T12:34:56.789 [INFO] (t=0) server
  EXPECT_NE(prefix.find("[INFO]"), std::string::npos);
  EXPECT_NE(prefix.find("(t="), std::string::npos);
  EXPECT_NE(prefix.find("server"), std::string::npos);
  EXPECT_NE(prefix.find("T"), std::string::npos);   // ISO date/time separator
  EXPECT_NE(prefix.find('.'), std::string::npos);   // millisecond part
  EXPECT_NE(format_log_prefix(LogLevel::kError, "x").find("[ERROR]"),
            std::string::npos);
}

TEST(LogPrefix, CarriesTheActiveTraceIdWhenSet) {
  // Without a request context the prefix is unchanged (byte-identical to
  // the pre-tracing format); with one, it gains ` trace=<16 hex digits>`.
  ASSERT_EQ(current_trace_id(), 0u);
  const std::string plain = format_log_prefix(LogLevel::kInfo, "server");
  EXPECT_EQ(plain.find("trace="), std::string::npos);

  set_current_trace_id(0xABCDEF0123456789ull);
  const std::string traced = format_log_prefix(LogLevel::kInfo, "server");
  EXPECT_NE(traced.find(" trace=abcdef0123456789"), std::string::npos);
  set_current_trace_id(0);
  EXPECT_EQ(format_log_prefix(LogLevel::kInfo, "server").find("trace="),
            std::string::npos);
}

TEST(LogLevelControl, SetAndGetRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
  EXPECT_EQ(log_level(), before);
}

}  // namespace
}  // namespace spnhbm
