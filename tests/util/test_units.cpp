#include "spnhbm/util/units.hpp"

#include <gtest/gtest.h>

namespace spnhbm {
namespace {

TEST(Units, ClockDomainPeriods) {
  const ClockDomain hbm(450e6);
  const ClockDomain pe(225e6);
  EXPECT_EQ(hbm.period(), 2222);  // truncated ps
  EXPECT_EQ(pe.period(), 4444);
  EXPECT_EQ(pe.cycles(2), 8888);
}

TEST(Units, ClockDomainCyclesToSeconds) {
  const ClockDomain pe(225e6);
  // 225e6 cycles should be very close to one second (truncation loss only).
  EXPECT_NEAR(pe.cycles_to_seconds(225'000'000), 1.0, 1e-3);
}

TEST(Units, TimeLiterals) {
  EXPECT_EQ(nanoseconds(1.0), 1'000);
  EXPECT_EQ(microseconds(1.0), 1'000'000);
  EXPECT_EQ(milliseconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(kPicosecondsPerSecond), 1.0);
}

TEST(Units, BandwidthBinaryVsDecimal) {
  // The paper's equivalence: 460 GB/s == ~428 GiB/s.
  const auto bw = Bandwidth::gb_per_second(460.0);
  EXPECT_NEAR(bw.as_gib_per_second(), 428.408, 0.1);
}

TEST(Units, BandwidthTransferTime) {
  const auto bw = Bandwidth::gib_per_second(1.0);
  EXPECT_EQ(bw.transfer_time(kGiB), kPicosecondsPerSecond);
  EXPECT_EQ(bw.transfer_time(kGiB / 2), kPicosecondsPerSecond / 2);
}

TEST(Units, GbitPerSecond) {
  // 100 Gb/s == 12.5 GB/s == ~11.64 GiB/s, the paper's DMA-engine class.
  const auto bw = Bandwidth::gbit_per_second(100.0);
  EXPECT_NEAR(bw.as_gb_per_second(), 12.5, 1e-9);
  EXPECT_NEAR(bw.as_gib_per_second(), 11.6415, 1e-3);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4 * kKiB), "4 KiB");
  EXPECT_EQ(format_bytes(kMiB), "1 MiB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3 GiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(133'139'305.0), "133.14 Msamples/s");
  EXPECT_EQ(format_rate(1.5e9), "1.50 Gsamples/s");
  EXPECT_EQ(format_rate(10.0), "10.00 samples/s");
}

}  // namespace
}  // namespace spnhbm
