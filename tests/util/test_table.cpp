#include "spnhbm/util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace spnhbm {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"Example", "New", "[8]"});
  table.add_row({"NIPS10", "169.8", "376.0"});
  table.add_row({"NIPS20", "180.5", "467.0"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Example | New   | [8]   |"), std::string::npos);
  EXPECT_NE(out.find("| NIPS10  | 169.8 | 376.0 |"), std::string::npos);
}

TEST(Table, RendersCsv) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.render_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::logic_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::logic_error);
}

TEST(Table, CountsRows) {
  Table table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace spnhbm
