#include "spnhbm/util/strings.hpp"

#include <gtest/gtest.h>

namespace spnhbm {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSingle) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Format) {
  EXPECT_EQ(strformat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strformat("%.2f GiB/s", 11.6415), "11.64 GiB/s");
  EXPECT_EQ(strformat("%s", ""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("NIPS80", "NIPS"));
  EXPECT_FALSE(starts_with("NI", "NIPS"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

}  // namespace
}  // namespace spnhbm
