#include "spnhbm/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace spnhbm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> touched(1000, 0);
  pool.parallel_for(touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i] += 1;
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), std::logic_error);
}

}  // namespace
}  // namespace spnhbm
