#include "spnhbm/util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "spnhbm/util/stats.hpp"

namespace spnhbm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversSupport) {
  Rng rng(13);
  std::vector<int> histogram(8, 0);
  for (int i = 0; i < 8'000; ++i) ++histogram[rng.next_below(8)];
  for (int count : histogram) {
    EXPECT_GT(count, 700);  // ~1000 expected each
    EXPECT_LT(count, 1300);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.next_normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_weighted(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, ZipfIsMonotoneDecreasing) {
  Rng rng(23);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 100'000; ++i) ++histogram[rng.next_zipf(10, 1.0)];
  // Rank-1 word must be clearly more frequent than rank-5 and rank-10.
  EXPECT_GT(histogram[0], histogram[4]);
  EXPECT_GT(histogram[4], histogram[9]);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng parent(29);
  Rng child1 = parent.fork(1);
  Rng child1_again = Rng(29).fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_EQ(child1.next_u64(), child1_again.next_u64());
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Rng, RequiresPositiveBound) {
  Rng rng(31);
  EXPECT_THROW(rng.next_below(0), std::logic_error);
}

}  // namespace
}  // namespace spnhbm
