#include "spnhbm/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace spnhbm {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(GeometricMean, MatchesPaperStyleSpeedups) {
  // Example shaped like the paper's geo-mean speedup reporting.
  const std::vector<double> speedups{0.88, 1.21, 1.9, 2.1, 2.46};
  const double geo = geometric_mean(speedups);
  double expected = 1.0;
  for (double s : speedups) expected *= s;
  expected = std::pow(expected, 1.0 / 5.0);
  EXPECT_NEAR(geo, expected, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::logic_error);
  EXPECT_THROW(geometric_mean({}), std::logic_error);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(values, 12.5), 1.5);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, c), 0.0);
}

TEST(GTest_Statistic, IndependentTableIsNearZero) {
  // Perfectly independent 2x2 table: counts proportional to row*col sums.
  const std::vector<double> counts{10.0, 30.0, 20.0, 60.0};
  EXPECT_NEAR(g_test_statistic(counts, 2, 2), 0.0, 1e-9);
}

TEST(GTest_Statistic, DependentTableIsLarge) {
  // Strong diagonal dependence.
  const std::vector<double> counts{50.0, 1.0, 1.0, 50.0};
  EXPECT_GT(g_test_statistic(counts, 2, 2), 50.0);
}

TEST(GTest_Statistic, EmptyTableIsZero) {
  const std::vector<double> counts{0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(g_test_statistic(counts, 2, 2), 0.0);
}

}  // namespace
}  // namespace spnhbm
