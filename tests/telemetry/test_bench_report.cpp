#include "spnhbm/telemetry/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/error.hpp"

namespace spnhbm::telemetry {
namespace {

TEST(BenchReport, JsonStructureParsesBack) {
  BenchReport report("fig_test");
  report.add()
      .field("request_bytes", 4096.0)
      .field("config", "native")
      .field("gib_per_s", 3.25);
  report.add().field("request_bytes", 65536.0);

  const JsonValue doc = parse_json(report.json());
  EXPECT_EQ(doc.at("bench").string, "fig_test");
  ASSERT_TRUE(doc.at("records").is_array());
  ASSERT_EQ(doc.at("records").array.size(), 2u);
  const JsonValue& first = doc.at("records").array[0];
  EXPECT_DOUBLE_EQ(first.at("request_bytes").number, 4096.0);
  EXPECT_EQ(first.at("config").string, "native");
  EXPECT_DOUBLE_EQ(first.at("gib_per_s").number, 3.25);
  EXPECT_FALSE(doc.at("records").array[1].has("config"));
}

TEST(BenchReport, EmptyReportIsValid) {
  BenchReport report("empty");
  const JsonValue doc = parse_json(report.json());
  EXPECT_EQ(doc.at("records").array.size(), 0u);
}

TEST(BenchReport, OutputPathHonoursEnvironmentOverride) {
  ::unsetenv("SPNHBM_BENCH_JSON_DIR");
  BenchReport report("micro");
  EXPECT_EQ(report.output_path(), "BENCH_micro.json");

  ::setenv("SPNHBM_BENCH_JSON_DIR", "/tmp/bench-out", 1);
  EXPECT_EQ(report.output_path(), "/tmp/bench-out/BENCH_micro.json");
  ::setenv("SPNHBM_BENCH_JSON_DIR", "/tmp/bench-out/", 1);
  EXPECT_EQ(report.output_path(), "/tmp/bench-out/BENCH_micro.json");
  ::unsetenv("SPNHBM_BENCH_JSON_DIR");
}

TEST(BenchReport, RejectsEmptyName) {
  EXPECT_THROW(BenchReport(""), std::logic_error);
}

TEST(BenchReport, WriteFailureThrows) {
  ::setenv("SPNHBM_BENCH_JSON_DIR", "/nonexistent-dir-for-test", 1);
  BenchReport report("unwritable");
  report.add().field("x", 1.0);
  EXPECT_THROW(report.write(), Error);
  ::unsetenv("SPNHBM_BENCH_JSON_DIR");
}

}  // namespace
}  // namespace spnhbm::telemetry
