#include "spnhbm/telemetry/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "spnhbm/util/error.hpp"

namespace spnhbm::telemetry {
namespace {

TEST(JsonQuote, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_quote(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
}

TEST(JsonWriter, PlacesCommasAutomatically) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value(2).value(3).end_array();
  w.key("c").begin_object().key("d").value(true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,3],"c":{"d":true}})");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("bench");
  w.key("values").begin_array().value(1.5).value(-2.0).end_array();
  w.key("empty").begin_object().end_object();
  w.end_object();

  const JsonValue doc = parse_json(w.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").string, "bench");
  ASSERT_TRUE(doc.at("values").is_array());
  ASSERT_EQ(doc.at("values").array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("values").array[0].number, 1.5);
  EXPECT_DOUBLE_EQ(doc.at("values").array[1].number, -2.0);
  EXPECT_TRUE(doc.at("empty").is_object());
}

TEST(JsonParse, HandlesEscapesAndLiterals) {
  const JsonValue doc =
      parse_json(R"({"s": "a\"\\\n\tb", "t": true, "f": false, "n": null})");
  EXPECT_EQ(doc.at("s").string, "a\"\\\n\tb");
  EXPECT_TRUE(doc.at("t").boolean);
  EXPECT_FALSE(doc.at("f").boolean);
  EXPECT_EQ(doc.at("n").kind, JsonValue::Kind::kNull);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1, 2,]"), Error);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), Error);
  EXPECT_THROW(parse_json("{'a': 1}"), Error);
}

TEST(JsonNumber, AvoidsNonFiniteTokens) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  // Infinities and NaN have no JSON number representation and must map to a
  // token that still parses (null).
  std::string wrapped = "[";
  wrapped += json_number(std::numeric_limits<double>::infinity());
  wrapped += "]";
  const JsonValue parsed = parse_json(wrapped);
  ASSERT_EQ(parsed.array.size(), 1u);
  // Non-integers round-trip exactly.
  const double pi = 3.141592653589793;
  EXPECT_DOUBLE_EQ(parse_json(json_number(pi)).number, pi);
}

}  // namespace
}  // namespace spnhbm::telemetry
