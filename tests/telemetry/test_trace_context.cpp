// Trace-context unit tests: id minting, head-sampler gating, the
// log-correlation scope, and the tail sampler's bounded-ring guarantee
// (never exceeds capacity, converges on the slowest requests).
#include "spnhbm/telemetry/trace_context.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "spnhbm/util/log.hpp"

namespace spnhbm::telemetry {
namespace {

TEST(TraceContext, MintedIdsAreNonZeroAndUnique) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t id = mint_trace_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id " << id;
  }
}

TEST(TraceContext, HexRenderingIsSixteenLowercaseDigits) {
  EXPECT_EQ(trace_id_hex(0xABCDEFull), "0000000000abcdef");
  EXPECT_EQ(trace_id_hex(0xFFFFFFFFFFFFFFFFull), "ffffffffffffffff");
}

TEST(TraceContext, DefaultContextIsInvalid) {
  const TraceContext none;
  EXPECT_FALSE(none.valid());
  const TraceContext some{mint_trace_id(), 0};
  EXPECT_TRUE(some.valid());
}

TEST(TraceContextScope, PublishesAndRestoresTheThreadLocalId) {
  ASSERT_EQ(current_trace_id(), 0u);
  {
    const TraceContextScope outer(TraceContext{0x1111, 0});
    EXPECT_EQ(current_trace_id(), 0x1111u);
    {
      const TraceContextScope inner(TraceContext{0x2222, 0});
      EXPECT_EQ(current_trace_id(), 0x2222u);
    }
    EXPECT_EQ(current_trace_id(), 0x1111u);
    {
      // A scope over an invalid context is a no-op, not a reset.
      const TraceContextScope noop(TraceContext{});
      EXPECT_EQ(current_trace_id(), 0x1111u);
    }
  }
  EXPECT_EQ(current_trace_id(), 0u);
}

TEST(TraceContextScope, TheIdIsPerThread) {
  const TraceContextScope scope(TraceContext{0xAAAA, 0});
  std::uint64_t other_thread = 0xDEAD;
  std::thread([&] { other_thread = current_trace_id(); }).join();
  EXPECT_EQ(other_thread, 0u);  // never leaks across threads
  EXPECT_EQ(current_trace_id(), 0xAAAAu);
}

TEST(HeadSampler, PeriodOneSamplesEverything) {
  HeadSampler sampler(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sampler.sample());
}

TEST(HeadSampler, OneInNIsExact) {
  HeadSampler sampler(4);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) sampled += sampler.sample() ? 1 : 0;
  EXPECT_EQ(sampled, 25);  // deterministic 1st, 5th, 9th, ...
}

TEST(HeadSampler, ZeroPeriodClampsToOne) {
  HeadSampler sampler(0);
  EXPECT_EQ(sampler.period(), 1u);
  sampler.set_period(7);
  EXPECT_EQ(sampler.period(), 7u);
}

RequestTraceRecord record(double latency_us) {
  RequestTraceRecord r;
  r.trace_id = mint_trace_id();
  r.model = "m@1";
  r.status = "OK";
  r.sample_count = 1;
  r.latency_us = latency_us;
  r.spans.push_back(RequestSpan{"request", 0.0, latency_us, 0});
  return r;
}

TEST(TailSampler, NeverExceedsCapacityUnderLoad) {
  TailSampler tail(4);
  for (int i = 0; i < 1000; ++i) {
    tail.offer(record(static_cast<double>((i * 37) % 501)));
    EXPECT_LE(tail.size(), 4u);
  }
  EXPECT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.offered(), 1000u);
}

TEST(TailSampler, RetainsTheSlowestRequestsSlowestFirst) {
  TailSampler tail(3);
  for (const double us : {10.0, 500.0, 20.0, 900.0, 5.0, 700.0, 30.0}) {
    tail.offer(record(us));
  }
  const auto kept = tail.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept[0].latency_us, 900.0);
  EXPECT_DOUBLE_EQ(kept[1].latency_us, 700.0);
  EXPECT_DOUBLE_EQ(kept[2].latency_us, 500.0);
  // The admission bar is the fastest retained record.
  EXPECT_DOUBLE_EQ(tail.threshold_us(), 500.0);
}

TEST(TailSampler, DescribeListsRetainedRecordsAndSpans) {
  TailSampler tail(2);
  tail.offer(record(123.0));
  const std::string text = tail.describe();
  EXPECT_NE(text.find("123.0"), std::string::npos);
  EXPECT_NE(text.find("request"), std::string::npos);
  EXPECT_NE(text.find("m@1"), std::string::npos);

  tail.clear();
  EXPECT_EQ(tail.size(), 0u);
  EXPECT_EQ(tail.offered(), 0u);
}

}  // namespace
}  // namespace spnhbm::telemetry
