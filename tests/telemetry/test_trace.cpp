#include "spnhbm/telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "spnhbm/telemetry/json.hpp"

namespace spnhbm::telemetry {
namespace {

TEST(Trace, DisabledPathAllocatesNothingAndDropsEverything) {
  Tracer t;
  ASSERT_FALSE(t.enabled());

  const TrackId track = t.register_track("hbm/ch0", TraceClock::kVirtual);
  EXPECT_EQ(track, 0u);  // null track while disabled

  t.complete_virtual(track, "rd", 0, 100);
  t.instant_virtual(track, "evt", 50);
  t.counter_virtual(track, "depth", 10, 3.0);
  t.complete_wall(track, "batch", Tracer::wall_now(), Tracer::wall_now());
  { const Tracer::WallSpan span(t, track, "scoped"); }

  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.track_count(), 0u);
  // The zero-allocation guarantee: the event buffer was never touched.
  EXPECT_EQ(t.event_buffer_capacity(), 0u);
}

TEST(Trace, CollectsSpansInstantsAndCounters) {
  Tracer t;
  t.enable();
  const TrackId hbm = t.register_track("hbm/ch0", TraceClock::kVirtual);
  const TrackId pcie = t.register_track("pcie/dma", TraceClock::kVirtual);
  ASSERT_NE(hbm, 0u);
  ASSERT_NE(pcie, 0u);
  EXPECT_NE(hbm, pcie);

  t.complete_virtual(hbm, "rd", 1'000'000, 3'000'000);  // 1us..3us
  t.instant_virtual(pcie, "irq", 2'000'000);
  t.counter_virtual(hbm, "depth", 2'500'000, 4.0);
  EXPECT_EQ(t.event_count(), 3u);
  EXPECT_EQ(t.track_count(), 2u);
}

TEST(Trace, ChromeTraceJsonParsesBackWithTrackMetadata) {
  Tracer t;
  t.enable();
  const TrackId hbm = t.register_track("hbm/ch0", TraceClock::kVirtual);
  const TrackId worker = t.register_track("server/worker0", TraceClock::kWall);
  t.complete_virtual(hbm, "rd", 1'000'000, 3'000'000);
  {
    const Tracer::WallSpan span(t, worker, "batch");
  }

  const JsonValue doc = parse_json(t.chrome_trace_json());
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  const auto& events = doc.at("traceEvents").array;

  bool saw_hbm_name = false, saw_worker_name = false;
  bool saw_span = false, saw_wall_span = false;
  for (const JsonValue& e : events) {
    const std::string ph = e.at("ph").string;
    if (ph == "M" && e.at("name").string == "thread_name") {
      const std::string name = e.at("args").at("name").string;
      if (name == "hbm/ch0") {
        saw_hbm_name = true;
        // Virtual-clock tracks live in the virtual-time "process".
        EXPECT_DOUBLE_EQ(e.at("pid").number, 2.0);
      }
      if (name == "server/worker0") {
        saw_worker_name = true;
        EXPECT_DOUBLE_EQ(e.at("pid").number, 1.0);
      }
    }
    if (ph == "X" && e.at("name").string == "rd") {
      saw_span = true;
      EXPECT_DOUBLE_EQ(e.at("ts").number, 1.0);  // microseconds
      EXPECT_DOUBLE_EQ(e.at("dur").number, 2.0);
      EXPECT_DOUBLE_EQ(e.at("tid").number, static_cast<double>(hbm));
      EXPECT_EQ(e.at("cat").string, "sim");
    }
    if (ph == "X" && e.at("name").string == "batch") {
      saw_wall_span = true;
      EXPECT_GE(e.at("dur").number, 0.0);
      EXPECT_EQ(e.at("cat").string, "wall");
    }
  }
  EXPECT_TRUE(saw_hbm_name);
  EXPECT_TRUE(saw_worker_name);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_wall_span);
}

TEST(Trace, FlowEventsLinkOneRequestAcrossBothClocks) {
  // The distributed-tracing contract: one request's flow chain — start on
  // a wall-clock track, steps on wall- and virtual-clock tracks, end back
  // on a wall track — shares one cat ("req") and one id, so Perfetto
  // draws a single arrow chain across the two clock "processes".
  Tracer t;
  t.enable();
  const TrackId client = t.register_track("rpc/client", TraceClock::kWall);
  const TrackId worker = t.register_track("server/worker0", TraceClock::kWall);
  const TrackId hbm = t.register_track("hbm/ch0", TraceClock::kVirtual);

  const std::uint64_t flow_id = 0xFEEDFACE;
  const auto wall = Tracer::wall_now();
  t.flow_wall(client, "request", 's', flow_id, wall);
  t.flow_wall(worker, "request", 't', flow_id, wall);
  t.flow_virtual(hbm, "request", 't', flow_id, 2'000'000);
  t.flow_wall(client, "request", 'f', flow_id, wall);
  EXPECT_EQ(t.event_count(), 4u);

  const JsonValue doc = parse_json(t.chrome_trace_json());
  int starts = 0, steps = 0, ends = 0;
  bool saw_virtual_step = false;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    const std::string ph = e.at("ph").string;
    if (ph != "s" && ph != "t" && ph != "f") continue;
    // Chrome binds a flow only across events whose cat AND id both match.
    EXPECT_EQ(e.at("cat").string, "req");
    EXPECT_DOUBLE_EQ(e.at("id").number, static_cast<double>(flow_id));
    if (ph == "s") ++starts;
    if (ph == "t") {
      ++steps;
      if (e.at("pid").number == 2.0) saw_virtual_step = true;
    }
    if (ph == "f") {
      ++ends;
      // The end binds to its enclosing slice, not the next slice.
      EXPECT_EQ(e.at("bp").string, "e");
    }
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(steps, 2);
  EXPECT_EQ(ends, 1);
  EXPECT_TRUE(saw_virtual_step);  // the chain crossed into virtual time
}

TEST(Trace, ReenableClearsPreviousRunAndDropsStaleTracks) {
  Tracer t;
  t.enable();
  const TrackId stale = t.register_track("old/track", TraceClock::kVirtual);
  t.complete_virtual(stale, "old", 0, 10);
  EXPECT_EQ(t.event_count(), 1u);

  t.enable();  // restart
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.track_count(), 0u);
  // Events on a track id from the previous run are dropped, not misfiled.
  t.complete_virtual(stale, "zombie", 0, 10);
  EXPECT_EQ(t.event_count(), 0u);

  const TrackId fresh = t.register_track("new/track", TraceClock::kVirtual);
  t.complete_virtual(fresh, "live", 0, 10);
  EXPECT_EQ(t.event_count(), 1u);
}

TEST(Trace, DisableStopsCollectionButKeepsCollectedEvents) {
  Tracer t;
  t.enable();
  const TrackId track = t.register_track("a", TraceClock::kVirtual);
  t.complete_virtual(track, "kept", 0, 10);
  t.disable();
  t.complete_virtual(track, "dropped", 20, 30);
  EXPECT_EQ(t.event_count(), 1u);
}

TEST(Trace, EmptyTraceIsStillValidJson) {
  Tracer t;
  t.enable();
  const JsonValue doc = parse_json(t.chrome_trace_json());
  ASSERT_TRUE(doc.at("traceEvents").is_array());
}

TEST(Trace, GlobalTracerIsASingleton) {
  EXPECT_EQ(&tracer(), &tracer());
  // The build's default: tracing off unless a CLI flag enables it. Other
  // tests here only use local tracers, so the global must still be off.
  EXPECT_FALSE(tracer().enabled());
}

}  // namespace
}  // namespace spnhbm::telemetry
