#include "spnhbm/telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <limits>
#include <vector>

#include "spnhbm/telemetry/json.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/stats.hpp"
#include "spnhbm/util/thread_pool.hpp"

namespace spnhbm::telemetry {
namespace {

TEST(Counter, AddsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter counter;
  ThreadPool pool(4);
  constexpr std::uint64_t kPerTask = 10'000;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(pool.submit([&counter] {
      for (std::uint64_t i = 0; i < kPerTask; ++i) counter.add();
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.value(), 8 * kPerTask);
}

TEST(Gauge, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(Histogram, BucketBoundariesGrowGeometrically) {
  Histogram histogram({.first_bucket = 1.0, .growth = 2.0, .bucket_count = 8});
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(histogram.upper_bound(i), std::pow(2.0, double(i)));
  }

  // A value exactly on a bucket's upper bound lands in that bucket; one just
  // above it lands in the next.
  histogram.record(1.0);
  histogram.record(1.0001);
  histogram.record(4.0);
  histogram.record(1e9);  // overflow bucket
  const HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 9u);  // 8 finite + overflow
  EXPECT_EQ(snap.bucket_counts[0], 1u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts.back(), 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 1e9);
  EXPECT_TRUE(std::isinf(snap.upper_bounds.back()));
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram histogram;
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.percentile(50.0), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.summary(), "n=0");
}

// The histogram's percentile estimate interpolates inside exponential
// buckets, so its error against the exact (sorted-sample) percentile is
// bounded by one bucket's relative width — a factor of `growth`.
TEST(Histogram, PercentilesMatchExactWithinBucketResolution) {
  Histogram histogram(
      {.first_bucket = 1.0, .growth = 1.5, .bucket_count = 64});
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    // Log-uniform over ~[1, 8e3] to exercise many buckets.
    const double u = static_cast<double>(rng.next_below(1'000'000)) / 1e6;
    values.push_back(std::exp(u * 9.0));
    histogram.record(values.back());
  }
  const HistogramSnapshot snap = histogram.snapshot();
  for (const double p : {50.0, 95.0, 99.0}) {
    const double exact = percentile(values, p);
    const double estimated = snap.percentile(p);
    EXPECT_GE(estimated, exact / 1.5) << "p" << p;
    EXPECT_LE(estimated, exact * 1.5) << "p" << p;
  }
  EXPECT_NEAR(snap.mean(),
              snap.sum / static_cast<double>(snap.count), 1e-9);
}

TEST(Histogram, PercentileClampedToObservedRange) {
  Histogram histogram;
  histogram.record(100.0);
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.percentile(0.0), 100.0);
  EXPECT_EQ(snap.percentile(50.0), 100.0);
  EXPECT_EQ(snap.percentile(100.0), 100.0);
}

TEST(Histogram, ConcurrentRecordsAreLossless) {
  Histogram histogram;
  ThreadPool pool(4);
  constexpr int kPerTask = 5'000;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(pool.submit([&histogram, t] {
      for (int i = 0; i < kPerTask; ++i) {
        histogram.record(static_cast<double>(t + 1));
      }
    }));
  }
  for (auto& f : futures) f.get();
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 8u * kPerTask);
  // Sum accumulates via CAS, so it is exact for these integer values:
  // 5000 * (1 + 2 + ... + 8).
  EXPECT_DOUBLE_EQ(snap.sum, kPerTask * 36.0);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 8.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  const auto a = registry.counter("requests");
  const auto b = registry.counter("requests");
  EXPECT_EQ(a, b);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_NE(registry.counter("other"), a);
}

TEST(MetricsRegistry, AttachHistogramReplacesEntry) {
  MetricsRegistry registry;
  const auto original = registry.histogram("latency");
  original->record(1.0);
  const auto replacement = std::make_shared<Histogram>();
  replacement->record(2.0);
  replacement->record(3.0);
  registry.attach_histogram("latency", replacement);
  EXPECT_EQ(registry.histogram("latency")->count(), 2u);
  // The original holder's handle stays valid.
  EXPECT_EQ(original->count(), 1u);
}

TEST(MetricsRegistry, JsonDumpParsesBack) {
  MetricsRegistry registry;
  registry.counter("hbm.bursts")->add(7);
  registry.gauge("sim.virtual_seconds")->set(0.125);
  const auto histogram = registry.histogram("latency_us");
  histogram->record(10.0);
  histogram->record(1000.0);

  const JsonValue doc = parse_json(registry.json_dump());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("hbm.bursts").number, 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("sim.virtual_seconds").number, 0.125);
  const JsonValue& latency = doc.at("histograms").at("latency_us");
  EXPECT_DOUBLE_EQ(latency.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(latency.at("sum").number, 1010.0);
  EXPECT_DOUBLE_EQ(latency.at("min").number, 10.0);
  EXPECT_DOUBLE_EQ(latency.at("max").number, 1000.0);
  ASSERT_TRUE(latency.at("buckets").is_array());
  // Sparse bucket encoding: only the two non-empty buckets appear.
  EXPECT_EQ(latency.at("buckets").array.size(), 2u);
}

TEST(MetricsRegistry, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.counter("pcie.bytes-h2d")->add(64);
  registry.gauge("queue.depth")->set(3.0);
  registry.histogram("wait_us")->record(5.0);

  const std::string text = registry.prometheus_text();
  // Names are sanitised to the Prometheus character set.
  EXPECT_NE(text.find("# TYPE spnhbm_pcie_bytes_h2d counter"),
            std::string::npos);
  EXPECT_NE(text.find("spnhbm_pcie_bytes_h2d 64"), std::string::npos);
  EXPECT_NE(text.find("spnhbm_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("spnhbm_wait_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("spnhbm_wait_us_count 1"), std::string::npos);
}

TEST(MetricsRegistry, ResetDetachesWithoutInvalidatingHolders) {
  MetricsRegistry registry;
  const auto counter = registry.counter("c");
  counter->add(5);
  registry.reset();
  EXPECT_EQ(counter->value(), 5u);           // holder unaffected
  EXPECT_EQ(registry.counter("c")->value(), 0u);  // registry starts fresh
}

TEST(GlobalMetrics, IsASingleton) {
  EXPECT_EQ(&metrics(), &metrics());
}

}  // namespace
}  // namespace spnhbm::telemetry
