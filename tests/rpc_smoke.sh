#!/usr/bin/env bash
# Loopback end-to-end smoke for the remote serving front end:
#
#   1. start `spnhbm serve --listen 0` in the background and read the
#      ephemeral port from --port-file,
#   2. run remote inference over the wire and diff it against the local
#      engine path — the transcripts must be byte-identical,
#   3. replay an open-loop load with 4 connections and check both the
#      client and server conservation summaries,
#   4. shut the server down via the wire shutdown frame and verify it
#      exits cleanly with the admission line in its report.
#
# With the optional second model, a multi-model fleet is smoked too:
# both models served from one `serve --listen` process, each stream
# diffed against its local inference.
#
# Phase 3 smokes the observability plane: a traced server under a traced
# load must yield client+server Chrome traces whose flow events link one
# request end to end (merged into one file when python3 is available),
# and `spnhbm top` must render a live ADMIN snapshot from the same port.
#
# Usage: rpc_smoke.sh <spnhbm-cli> <model.spn> <samples.csv> <work-dir> \
#                     [<model2.spn> <samples2.csv>]
set -euo pipefail

CLI=$1
MODEL=$2
SAMPLES=$3
WORK=$4
MODEL2=${5:-}
SAMPLES2=${6:-}

mkdir -p "$WORK"
PORT_FILE=$WORK/rpc_smoke.port
SERVER_OUT=$WORK/rpc_smoke.server.out
rm -f "$PORT_FILE"

"$CLI" serve "$MODEL" --engines cpu --batch 8 --max-latency-us 500 \
  --listen 0 --port-file "$PORT_FILE" > "$SERVER_OUT" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "server died before binding:"; cat "$SERVER_OUT"; exit 1; }
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "server never wrote the port file"; exit 1; }
PORT=$(cat "$PORT_FILE")
echo "server listening on port $PORT"

"$CLI" --version

# Remote vs local inference: byte-identical transcripts.
"$CLI" infer "$MODEL" "$SAMPLES" --engine cpu > "$WORK/rpc_smoke.local.out"
"$CLI" infer --connect "127.0.0.1:$PORT" "$SAMPLES" \
  > "$WORK/rpc_smoke.remote.out"
diff "$WORK/rpc_smoke.local.out" "$WORK/rpc_smoke.remote.out"
echo "remote inference matches local inference"

# Open-loop load across 4 connections, then ask the server to drain.
"$CLI" loadgen --connect "127.0.0.1:$PORT" --requests "$SAMPLES" \
  --count 200 --rate 5000 --arrival poisson --connections 4 --seed 7 \
  --shutdown > "$WORK/rpc_smoke.loadgen.out"
cat "$WORK/rpc_smoke.loadgen.out"
grep -q "conservation (sent == sum over statuses): ok" \
  "$WORK/rpc_smoke.loadgen.out"

# The shutdown frame must drain the server (bounded wait, no kill).
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "server ignored the shutdown frame:"; cat "$SERVER_OUT"; exit 1
fi
wait "$SERVER_PID" || { echo "server exited non-zero:"; cat "$SERVER_OUT"; exit 1; }
trap - EXIT

# The end-of-run report carries the unconditional admission line and the
# RPC conservation summary.
grep -q "admission:" "$SERVER_OUT"
grep -q "conservation ok" "$SERVER_OUT"

# Phase 2 (optional): the same loop against a multi-model fleet.
if [ -n "$MODEL2" ]; then
  rm -f "$PORT_FILE"
  "$CLI" serve --model a="$MODEL" --model b="$MODEL2" --engines cpu \
    --batch 8 --max-latency-us 500 --listen 0 --port-file "$PORT_FILE" \
    > "$WORK/rpc_smoke.mm_server.out" 2>&1 &
  SERVER_PID=$!
  trap cleanup EXIT
  for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    sleep 0.1
  done
  PORT=$(cat "$PORT_FILE")
  "$CLI" infer "$MODEL2" "$SAMPLES2" --engine cpu \
    > "$WORK/rpc_smoke.local2.out"
  "$CLI" infer --connect "127.0.0.1:$PORT" "$SAMPLES" --model a \
    > "$WORK/rpc_smoke.remote_a.out"
  "$CLI" infer --connect "127.0.0.1:$PORT" "$SAMPLES2" --model b \
    > "$WORK/rpc_smoke.remote_b.out"
  diff "$WORK/rpc_smoke.local.out" "$WORK/rpc_smoke.remote_a.out"
  diff "$WORK/rpc_smoke.local2.out" "$WORK/rpc_smoke.remote_b.out"
  echo "multi-model remote inference matches local inference"
  "$CLI" loadgen --connect "127.0.0.1:$PORT" --requests "$SAMPLES2" \
    --model b --count 100 --rate 5000 --connections 4 --seed 7 \
    --shutdown > "$WORK/rpc_smoke.mm_loadgen.out"
  grep -q "conservation (sent == sum over statuses): ok" \
    "$WORK/rpc_smoke.mm_loadgen.out"
  for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  wait "$SERVER_PID" || {
    echo "multi-model server exited non-zero:"
    cat "$WORK/rpc_smoke.mm_server.out"; exit 1; }
  trap - EXIT
  grep -q "conservation ok" "$WORK/rpc_smoke.mm_server.out"
fi

# Phase 3: distributed tracing + the live ADMIN plane. FPGA + CPU
# engines so the flow chain reaches the virtual-time HBM/DMA lanes.
rm -f "$PORT_FILE"
"$CLI" serve "$MODEL" --engines fpga,cpu --batch 8 --max-latency-us 500 \
  --listen 0 --port-file "$PORT_FILE" \
  --trace-out "$WORK/rpc_smoke.server_trace.json" \
  > "$WORK/rpc_smoke.traced_server.out" 2>&1 &
SERVER_PID=$!
trap cleanup EXIT
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "traced server died before binding:"
    cat "$WORK/rpc_smoke.traced_server.out"; exit 1; }
  sleep 0.1
done
PORT=$(cat "$PORT_FILE")

# One ADMIN snapshot off the live server.
"$CLI" top --connect "127.0.0.1:$PORT" --once > "$WORK/rpc_smoke.top.out"
cat "$WORK/rpc_smoke.top.out"
grep -q "engine 0" "$WORK/rpc_smoke.top.out"
grep -q "requests " "$WORK/rpc_smoke.top.out"
grep -q "slowest traced requests" "$WORK/rpc_smoke.top.out"
echo "top renders the ADMIN snapshot"

"$CLI" loadgen --connect "127.0.0.1:$PORT" --requests "$SAMPLES" \
  --count 100 --rate 2000 --connections 2 --seed 7 \
  --trace-out "$WORK/rpc_smoke.client_trace.json" \
  --report-out "$WORK/rpc_smoke.report.json" \
  --shutdown > "$WORK/rpc_smoke.traced_loadgen.out"
grep -q "conservation (sent == sum over statuses): ok" \
  "$WORK/rpc_smoke.traced_loadgen.out"
grep -q '"name":"overall"' "$WORK/rpc_smoke.report.json"

for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
wait "$SERVER_PID" || {
  echo "traced server exited non-zero:"
  cat "$WORK/rpc_smoke.traced_server.out"; exit 1; }
trap - EXIT
[ -s "$WORK/rpc_smoke.server_trace.json" ]
[ -s "$WORK/rpc_smoke.client_trace.json" ]

# Merge the two per-process traces into one file and assert the flow
# chain actually spans client -> server -> virtual-time device lanes.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$WORK/rpc_smoke.client_trace.json" \
    "$WORK/rpc_smoke.server_trace.json" \
    "$WORK/rpc_smoke.merged_trace.json" <<'PY'
import json, sys
client_path, server_path, out_path = sys.argv[1:4]
merged = []
# The server keeps its pids (1 = wall, 2 = virtual); the client's are
# remapped out of the way so the lanes stay distinct in one view.
for path, pid_base in ((server_path, 0), (client_path, 10)):
    for event in json.load(open(path))["traceEvents"]:
        event = dict(event)
        event["pid"] = event["pid"] + pid_base
        merged.append(event)
flows = [e for e in merged
         if e.get("ph") in ("s", "t", "f") and e.get("cat") == "req"]
phases_by_id = {}
for e in flows:
    phases_by_id.setdefault(e["id"], set()).add(e["ph"])
complete = [i for i, phases in phases_by_id.items()
            if phases == {"s", "t", "f"}]
assert complete, "no request flow chain spans client and server"
virtual_steps = [e for e in flows if e["pid"] == 2 and e["ph"] == "t"]
assert virtual_steps, "no flow step reached the virtual-time device lanes"
json.dump({"displayTimeUnit": "ms", "traceEvents": merged},
          open(out_path, "w"))
print("merged trace: %d events, %d complete request chains, "
      "%d virtual-time flow steps" %
      (len(merged), len(complete), len(virtual_steps)))
PY
else
  echo "python3 unavailable; skipping trace merge check"
fi
echo "rpc smoke: OK"
