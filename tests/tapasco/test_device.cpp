#include "spnhbm/tapasco/device.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "spnhbm/fault/fault.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::tapasco {
namespace {

struct Harness {
  Harness()
      : model(workload::make_nips_model(10)),
        backend(arith::make_cfp_backend(arith::paper_cfp_format())),
        module(compiler::compile_spn(model.spn, *backend)) {}

  sim::Scheduler scheduler;
  sim::ProcessRunner runner{scheduler};
  workload::NipsModel model;
  std::unique_ptr<arith::ArithBackend> backend;
  compiler::DatapathModule module;
};

TEST(Device, ComposesHbmPlatform) {
  Harness h;
  CompositionConfig config;
  config.pe_count = 4;
  Device device(h.runner, h.module, *h.backend, config);
  EXPECT_EQ(device.pe_count(), 4u);
  EXPECT_NE(device.backing_channel(0), nullptr);
  EXPECT_EQ(device.memory_capacity_per_pe(), 256ull * kMiB);
}

TEST(Device, ComposesF1Platform) {
  Harness h;
  const auto f64 = arith::make_float64_backend();
  const auto module = compiler::compile_spn(h.model.spn, *f64);
  CompositionConfig config;
  config.platform = fpga::Platform::kF1;
  config.pe_count = 4;
  config.memory_channels = 4;
  Device device(h.runner, module, *f64, config);
  EXPECT_EQ(device.pe_count(), 4u);
  EXPECT_EQ(device.backing_channel(0), nullptr);
}

TEST(Device, CompositionRunsPlacementCheck) {
  Harness h;
  CompositionConfig config;
  config.pe_count = 16;  // beyond the routing cap
  EXPECT_THROW(Device(h.runner, h.module, *h.backend, config),
               PlacementError);
  config.skip_placement_check = true;
  EXPECT_NO_THROW(Device(h.runner, h.module, *h.backend, config));
}

TEST(Device, ConfigQueryThroughRegisterFile) {
  Harness h;
  CompositionConfig config;
  Device device(h.runner, h.module, *h.backend, config);
  EXPECT_EQ(device.query_config(0, fpga::ConfigQuery::kInputFeatures), 10u);
  EXPECT_EQ(device.query_config(0, fpga::ConfigQuery::kInterfaceBytes), 64u);
}

TEST(Device, CopyRoundTripThroughDma) {
  Harness h;
  CompositionConfig config;
  Device device(h.runner, h.module, *h.backend, config);
  std::vector<std::uint8_t> data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> readback(data.size());
  h.runner.spawn([&]() -> sim::Process {
    co_await device.copy_to_device(0, 4096, data);
    co_await device.copy_from_device(0, 4096, readback);
  });
  h.scheduler.run();
  h.runner.check();
  EXPECT_EQ(readback, data);
  EXPECT_EQ(device.dma().bytes_to_device(), data.size());
  EXPECT_EQ(device.dma().bytes_to_host(), data.size());
  EXPECT_GT(h.scheduler.now(), 0);
}

TEST(Device, LaunchInferencePaysLaunchOverhead) {
  Harness h;
  CompositionConfig config;
  config.compute_results = false;
  Device device(h.runner, h.module, *h.backend, config);
  h.runner.spawn([&]() -> sim::Process {
    co_await device.launch_inference(0, 0, 16 * kMiB, 1000);
  });
  h.scheduler.run();
  h.runner.check();
  EXPECT_GE(h.scheduler.now(), fpga::cal::kJobLaunchOverhead);
}

TEST(Device, F1UsesSlowerDma) {
  Harness h;
  CompositionConfig hbm_config;
  Device hbm_device(h.runner, h.module, *h.backend, hbm_config);

  const auto f64 = arith::make_float64_backend();
  const auto f1_module = compiler::compile_spn(h.model.spn, *f64);
  CompositionConfig f1_config;
  f1_config.platform = fpga::Platform::kF1;
  f1_config.memory_channels = 1;
  sim::Scheduler scheduler2;
  sim::ProcessRunner runner2(scheduler2);
  Device f1_device(runner2, f1_module, *f64, f1_config);
  EXPECT_LT(f1_device.dma().config().engine_bandwidth.as_gib_per_second(),
            hbm_device.dma().config().engine_bandwidth.as_gib_per_second());
}

TEST(DeviceFaults, WriteSideEccErrorIsHealedByDriverRetry) {
  // Corrupting the first HBM burst of a host->device stream trips the ECC
  // check; the driver layer re-queues the write (the retried stream
  // re-sends the data), so the copy still succeeds and the backing store
  // ends up with the intended bytes.
  Harness h;
  CompositionConfig config;
  Device device(h.runner, h.module, *h.backend, config);

  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "hbm.access";
  rule.instance = "hbm/ch0";
  rule.kind = fault::FaultKind::kCorrupt;
  rule.has_window = true;
  rule.from = 0;
  rule.until = 1;
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);

  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  std::vector<std::uint8_t> readback(data.size());
  h.runner.spawn([&]() -> sim::Process {
    co_await device.copy_to_device(0, 8192, data);
    co_await device.copy_from_device(0, 8192, readback);
  });
  h.scheduler.run();
  h.runner.check();
  EXPECT_EQ(readback, data);
  EXPECT_EQ(fault::injector().injected(), 1u);
}

TEST(DeviceFaults, ReadSideEccErrorPropagatesToTheHost) {
  // A read stream cannot be healed by re-queueing — only re-running the
  // producing job recomputes the data — so the ECC error must reach the
  // caller (where the serving layer's batch retry takes over).
  Harness h;
  CompositionConfig config;
  Device device(h.runner, h.module, *h.backend, config);

  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "hbm.access";
  rule.instance = "hbm/ch0";
  rule.kind = fault::FaultKind::kCorrupt;
  rule.has_window = true;
  rule.from = 0;
  rule.until = 1;
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);

  std::vector<std::uint8_t> out(4096);
  h.runner.spawn([&]() -> sim::Process {
    co_await device.copy_from_device(0, 8192, out);
  });
  h.scheduler.run();
  EXPECT_THROW(h.runner.check(), hbm::HbmEccError);
}

TEST(DeviceFaults, TransientDmaFaultIsRetriedToCompletion) {
  Harness h;
  CompositionConfig config;
  Device device(h.runner, h.module, *h.backend, config);

  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "pcie.dma";
  rule.kind = fault::FaultKind::kFail;
  rule.has_window = true;
  rule.from = 0;
  rule.until = 1;
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);

  std::vector<std::uint8_t> data(2048, 0x5A);
  std::vector<std::uint8_t> readback(data.size());
  h.runner.spawn([&]() -> sim::Process {
    co_await device.copy_to_device(0, 0, data);
    co_await device.copy_from_device(0, 0, readback);
  });
  h.scheduler.run();
  h.runner.check();
  EXPECT_EQ(readback, data);
  EXPECT_EQ(device.dma().failed_transfers(), 1u);
  // First transfer burnt by the fault + its retry + the read-back.
  EXPECT_EQ(device.dma().transfers(), 3u);
}

TEST(DeviceFaults, PersistentDmaFaultExhaustsTheRetryBudget) {
  Harness h;
  CompositionConfig config;
  Device device(h.runner, h.module, *h.backend, config);

  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "pcie.dma";
  rule.kind = fault::FaultKind::kFail;
  rule.every = 1;  // every transfer aborts
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);

  std::vector<std::uint8_t> data(1024, 1);
  h.runner.spawn([&]() -> sim::Process {
    co_await device.copy_to_device(0, 0, data);
  });
  h.scheduler.run();
  EXPECT_THROW(h.runner.check(), pcie::DmaError);
  // The driver's bounded budget: 8 attempts, all failed.
  EXPECT_EQ(device.dma().failed_transfers(), 8u);
}

TEST(DeviceFaults, PeLaunchFaultRejectsTheJobThenRecovers) {
  Harness h;
  CompositionConfig config;
  config.compute_results = false;
  Device device(h.runner, h.module, *h.backend, config);

  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "pe.launch";
  rule.instance = "pe0";
  rule.kind = fault::FaultKind::kFail;
  rule.has_window = true;
  rule.from = 0;
  rule.until = 1;
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);

  h.runner.spawn([&]() -> sim::Process {
    co_await device.launch_inference(0, 0, 16 * kMiB, 100);
  });
  h.scheduler.run();
  EXPECT_THROW(h.runner.check(), PeLaunchError);

  // The next launch (op 1, outside the window) proceeds normally.
  h.runner.spawn([&]() -> sim::Process {
    co_await device.launch_inference(0, 0, 16 * kMiB, 100);
  });
  h.scheduler.run();
  h.runner.check();
  EXPECT_GE(h.scheduler.now(), fpga::cal::kJobLaunchOverhead);
}

TEST(DeviceFaults, PeLaunchStallDelaysTheDoorbell) {
  Harness h;
  CompositionConfig config;
  config.compute_results = false;
  Device device(h.runner, h.module, *h.backend, config);
  const auto run = [&](bool inject) {
    std::unique_ptr<fault::ScopedFaultPlan> armed;
    if (inject) {
      fault::FaultPlan plan;
      fault::FaultRule rule;
      rule.site = "pe.launch";
      rule.kind = fault::FaultKind::kStall;
      rule.every = 1;
      rule.duration_us = 250.0;
      plan.rules.push_back(rule);
      armed = std::make_unique<fault::ScopedFaultPlan>(plan);
    }
    const Picoseconds start = h.scheduler.now();
    h.runner.spawn([&]() -> sim::Process {
      co_await device.launch_inference(0, 0, 16 * kMiB, 100);
    });
    h.scheduler.run();
    h.runner.check();
    return h.scheduler.now() - start;
  };
  const Picoseconds baseline = run(false);
  const Picoseconds stalled = run(true);
  // Consecutive launches differ by a few ns of register-file state, so
  // bound the injected delay instead of demanding exact equality.
  EXPECT_GE(stalled - baseline, microseconds(250.0));
  EXPECT_LT(stalled - baseline, microseconds(251.0));
}

TEST(Device, RejectsBadIndices) {
  Harness h;
  CompositionConfig config;
  Device device(h.runner, h.module, *h.backend, config);
  EXPECT_THROW(device.pe(5), std::logic_error);
  EXPECT_THROW(device.backing_channel(5), std::logic_error);
}

}  // namespace
}  // namespace spnhbm::tapasco
