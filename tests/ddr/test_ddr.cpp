#include "spnhbm/ddr/ddr.hpp"

#include <gtest/gtest.h>

#include "spnhbm/hbm/hbm.hpp"
#include "spnhbm/sim/process.hpp"

namespace spnhbm::ddr {
namespace {

double measure_linear_read(DdrChannel& channel, sim::Scheduler& scheduler,
                           std::uint64_t total_bytes) {
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await axi::linear_transfer(channel.port(), 0, total_bytes, false);
  });
  scheduler.run();
  runner.check();
  return static_cast<double>(total_bytes) / to_seconds(scheduler.now()) /
         static_cast<double>(kGiB);
}

TEST(DdrChannel, RawBandwidthMatchesDdr4_2133) {
  sim::Scheduler scheduler;
  DdrChannel channel(scheduler);
  EXPECT_NEAR(channel.raw_bandwidth().as_gb_per_second(), 17.064, 1e-3);
}

TEST(DdrChannel, LinearReadsLandBelowRaw) {
  sim::Scheduler scheduler;
  DdrChannel channel(scheduler);
  const double gib = measure_linear_read(channel, scheduler, 64 * kMiB);
  EXPECT_GT(gib, 12.0);
  EXPECT_LT(gib, 15.9);  // raw is 15.89 GiB/s
}

TEST(DdrChannel, SingleSharedChannelIsSlowerThanPerPeHbm) {
  // The architectural point of the paper: four PEs sharing one DDR channel
  // see less bandwidth each than four PEs on private HBM channels.
  const auto shared_ddr = [] {
    sim::Scheduler scheduler;
    DdrChannel channel(scheduler);
    sim::ProcessRunner runner(scheduler);
    for (int pe = 0; pe < 4; ++pe) {
      runner.spawn([&channel, pe]() -> sim::Process {
        co_await axi::linear_transfer(channel.port(), pe * 32 * kMiB,
                                      8 * kMiB, false);
      });
    }
    scheduler.run();
    runner.check();
    return static_cast<double>(32 * kMiB) / to_seconds(scheduler.now());
  }();
  const auto private_hbm = [] {
    sim::Scheduler scheduler;
    hbm::HbmDevice device(scheduler);
    sim::ProcessRunner runner(scheduler);
    for (int pe = 0; pe < 4; ++pe) {
      runner.spawn([&device, pe]() -> sim::Process {
        co_await axi::linear_transfer(device.port(pe), 0, 8 * kMiB, false);
      });
    }
    scheduler.run();
    runner.check();
    return static_cast<double>(32 * kMiB) / to_seconds(scheduler.now());
  }();
  EXPECT_GT(private_hbm, 2.5 * shared_ddr);
}

TEST(DdrChannel, StatsAccumulate) {
  sim::Scheduler scheduler;
  DdrChannel channel(scheduler);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await channel.access(axi::BurstRequest{0, 4096, true});
    co_await channel.access(axi::BurstRequest{4096, 2048, false});
  });
  scheduler.run();
  runner.check();
  EXPECT_EQ(channel.bytes_written(), 4096u);
  EXPECT_EQ(channel.bytes_read(), 2048u);
  EXPECT_GT(channel.busy_time(), 0);
}

TEST(DdrChannel, RejectsOversizedBurst) {
  sim::Scheduler scheduler;
  DdrChannel channel(scheduler);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await channel.access(axi::BurstRequest{0, 1 << 20, false});
  });
  scheduler.run();
  EXPECT_THROW(runner.check(), std::logic_error);
}

}  // namespace
}  // namespace spnhbm::ddr
