#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/validate.hpp"
#include "spnhbm/util/stats.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::workload {
namespace {

TEST(BagOfWords, ShapeAndDomain) {
  CorpusConfig config;
  config.documents = 256;
  config.vocabulary = 10;
  const auto data = make_bag_of_words(config);
  EXPECT_EQ(data.rows(), 256u);
  EXPECT_EQ(data.cols(), 10u);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      EXPECT_GE(data.at(r, c), 0.0);
      EXPECT_LE(data.at(r, c), 255.0);
    }
  }
}

TEST(BagOfWords, DeterministicInSeed) {
  CorpusConfig config;
  config.documents = 64;
  config.vocabulary = 8;
  const auto a = make_bag_of_words(config);
  const auto b = make_bag_of_words(config);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a.at(r, c), b.at(r, c));
    }
  }
  config.seed += 1;
  const auto c = make_bag_of_words(config);
  bool any_diff = false;
  for (std::size_t r = 0; r < a.rows() && !any_diff; ++r) {
    for (std::size_t col = 0; col < a.cols(); ++col) {
      if (a.at(r, col) != c.at(r, col)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(BagOfWords, FrequentWordsAreFrequent) {
  // Zipf word marginals: the column sums must broadly decrease with rank.
  CorpusConfig config;
  config.documents = 2048;
  config.vocabulary = 20;
  const auto data = make_bag_of_words(config);
  double head = 0.0, tail = 0.0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < 5; ++c) head += data.at(r, c);
    for (std::size_t c = 15; c < 20; ++c) tail += data.at(r, c);
  }
  EXPECT_GT(head, 2.0 * tail);
}

TEST(BagOfWords, TopicsInduceCorrelations) {
  // Without correlations, LearnSPN would factorise everything and the
  // whole reproduction would degenerate. Check some pair correlates.
  CorpusConfig config;
  config.documents = 4096;
  config.vocabulary = 10;
  const auto data = make_bag_of_words(config);
  double max_abs_corr = 0.0;
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      std::vector<double> col_a(data.rows()), col_b(data.rows());
      for (std::size_t r = 0; r < data.rows(); ++r) {
        col_a[r] = data.at(r, a);
        col_b[r] = data.at(r, b);
      }
      max_abs_corr =
          std::max(max_abs_corr, std::fabs(pearson_correlation(col_a, col_b)));
    }
  }
  EXPECT_GT(max_abs_corr, 0.2);
}

TEST(ModelZoo, BenchmarkSizesMatchPaper) {
  EXPECT_EQ(nips_benchmark_sizes(),
            (std::vector<std::size_t>{10, 20, 30, 40, 80}));
}

TEST(ModelZoo, TransferSizesMatchPaperArithmetic) {
  const auto model = make_nips_model(10);
  // The paper: NIPS10 = 10 input bytes + 8 result bytes = 144 bits/sample.
  EXPECT_EQ(model.input_bytes_per_sample(), 10u);
  EXPECT_EQ(NipsModel::result_bytes_per_sample(), 8u);
  EXPECT_EQ(model.total_bytes_per_sample() * 8, 144u);
}

TEST(ModelZoo, ModelsAreValidAndSized) {
  const auto model = make_nips_model(20);
  EXPECT_EQ(model.name, "NIPS20");
  EXPECT_NO_THROW(spn::validate_or_throw(model.spn));
  EXPECT_EQ(model.spn.variable_count(), 20u);
  // A learned model must be a real mixture, not a trivial factorisation.
  EXPECT_GT(compute_stats(model.spn).sum_nodes, 0u);
}

TEST(ModelZoo, StructureGrowsWithVariables) {
  const auto small = make_nips_model(10);
  const auto large = make_nips_model(40);
  EXPECT_GT(compute_stats(large.spn).total_nodes(),
            compute_stats(small.spn).total_nodes());
}

TEST(ModelZoo, DeterministicAcrossCalls) {
  const auto a = make_nips_model(10);
  const auto b = make_nips_model(10);
  EXPECT_EQ(a.spn.node_count(), b.spn.node_count());
  spn::Evaluator ea(a.spn), eb(b.spn);
  std::vector<double> sample(10, 3.0);
  EXPECT_DOUBLE_EQ(ea.evaluate(sample), eb.evaluate(sample));
}

TEST(ModelZoo, DeepModelNeedsLogDomain) {
  // NIPS80 joints underflow linear double territory on unlikely inputs;
  // the log-domain evaluator must stay finite wherever the density is
  // nonzero — the robustness property deep SPNs require.
  const auto model = make_nips_model(80);
  spn::Evaluator evaluator(model.spn);
  CorpusConfig config;
  config.documents = 16;
  config.vocabulary = 80;
  config.seed = 555;
  const auto data = make_bag_of_words(config);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double log_p = evaluator.evaluate_log(data.row(r));
    EXPECT_TRUE(std::isfinite(log_p)) << "row " << r;
    EXPECT_LT(log_p, 0.0);
    // Consistency with the linear path where it has dynamic range.
    const double p = evaluator.evaluate(data.row(r));
    if (p > 1e-290) {
      EXPECT_NEAR(log_p, std::log(p), 1e-9 * std::fabs(std::log(p)));
    }
  }
}

TEST(ModelZoo, EvaluatesRealCorpusRows) {
  const auto model = make_nips_model(10);
  CorpusConfig config;
  config.documents = 32;
  config.vocabulary = 10;
  const auto data = make_bag_of_words(config);
  spn::Evaluator evaluator(model.spn);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double p = evaluator.evaluate(data.row(r));
    EXPECT_GE(p, 0.0);
    EXPECT_TRUE(std::isfinite(p));
  }
}

}  // namespace
}  // namespace spnhbm::workload
