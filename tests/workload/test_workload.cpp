#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/validate.hpp"
#include "spnhbm/util/stats.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::workload {
namespace {

TEST(BagOfWords, ShapeAndDomain) {
  CorpusConfig config;
  config.documents = 256;
  config.vocabulary = 10;
  const auto data = make_bag_of_words(config);
  EXPECT_EQ(data.rows(), 256u);
  EXPECT_EQ(data.cols(), 10u);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      EXPECT_GE(data.at(r, c), 0.0);
      EXPECT_LE(data.at(r, c), 255.0);
    }
  }
}

TEST(BagOfWords, DeterministicInSeed) {
  CorpusConfig config;
  config.documents = 64;
  config.vocabulary = 8;
  const auto a = make_bag_of_words(config);
  const auto b = make_bag_of_words(config);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a.at(r, c), b.at(r, c));
    }
  }
  config.seed += 1;
  const auto c = make_bag_of_words(config);
  bool any_diff = false;
  for (std::size_t r = 0; r < a.rows() && !any_diff; ++r) {
    for (std::size_t col = 0; col < a.cols(); ++col) {
      if (a.at(r, col) != c.at(r, col)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(BagOfWords, FrequentWordsAreFrequent) {
  // Zipf word marginals: the column sums must broadly decrease with rank.
  CorpusConfig config;
  config.documents = 2048;
  config.vocabulary = 20;
  const auto data = make_bag_of_words(config);
  double head = 0.0, tail = 0.0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < 5; ++c) head += data.at(r, c);
    for (std::size_t c = 15; c < 20; ++c) tail += data.at(r, c);
  }
  EXPECT_GT(head, 2.0 * tail);
}

TEST(BagOfWords, TopicsInduceCorrelations) {
  // Without correlations, LearnSPN would factorise everything and the
  // whole reproduction would degenerate. Check some pair correlates.
  CorpusConfig config;
  config.documents = 4096;
  config.vocabulary = 10;
  const auto data = make_bag_of_words(config);
  double max_abs_corr = 0.0;
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      std::vector<double> col_a(data.rows()), col_b(data.rows());
      for (std::size_t r = 0; r < data.rows(); ++r) {
        col_a[r] = data.at(r, a);
        col_b[r] = data.at(r, b);
      }
      max_abs_corr =
          std::max(max_abs_corr, std::fabs(pearson_correlation(col_a, col_b)));
    }
  }
  EXPECT_GT(max_abs_corr, 0.2);
}

TEST(ModelZoo, BenchmarkSizesMatchPaper) {
  EXPECT_EQ(nips_benchmark_sizes(),
            (std::vector<std::size_t>{10, 20, 30, 40, 80}));
}

TEST(ModelZoo, TransferSizesMatchPaperArithmetic) {
  const auto model = make_nips_model(10);
  // The paper: NIPS10 = 10 input bytes + 8 result bytes = 144 bits/sample.
  EXPECT_EQ(model.input_bytes_per_sample(), 10u);
  EXPECT_EQ(NipsModel::result_bytes_per_sample(), 8u);
  EXPECT_EQ(model.total_bytes_per_sample() * 8, 144u);
}

TEST(ModelZoo, ModelsAreValidAndSized) {
  const auto model = make_nips_model(20);
  EXPECT_EQ(model.name, "NIPS20");
  EXPECT_NO_THROW(spn::validate_or_throw(model.spn));
  EXPECT_EQ(model.spn.variable_count(), 20u);
  // A learned model must be a real mixture, not a trivial factorisation.
  EXPECT_GT(compute_stats(model.spn).sum_nodes, 0u);
}

TEST(ModelZoo, StructureGrowsWithVariables) {
  const auto small = make_nips_model(10);
  const auto large = make_nips_model(40);
  EXPECT_GT(compute_stats(large.spn).total_nodes(),
            compute_stats(small.spn).total_nodes());
}

TEST(ModelZoo, DeterministicAcrossCalls) {
  const auto a = make_nips_model(10);
  const auto b = make_nips_model(10);
  EXPECT_EQ(a.spn.node_count(), b.spn.node_count());
  spn::Evaluator ea(a.spn), eb(b.spn);
  std::vector<double> sample(10, 3.0);
  EXPECT_DOUBLE_EQ(ea.evaluate(sample), eb.evaluate(sample));
}

TEST(ModelZoo, DeepModelNeedsLogDomain) {
  // NIPS80 joints underflow linear double territory on unlikely inputs;
  // the log-domain evaluator must stay finite wherever the density is
  // nonzero — the robustness property deep SPNs require.
  const auto model = make_nips_model(80);
  spn::Evaluator evaluator(model.spn);
  CorpusConfig config;
  config.documents = 16;
  config.vocabulary = 80;
  config.seed = 555;
  const auto data = make_bag_of_words(config);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double log_p = evaluator.evaluate_log(data.row(r));
    EXPECT_TRUE(std::isfinite(log_p)) << "row " << r;
    EXPECT_LT(log_p, 0.0);
    // Consistency with the linear path where it has dynamic range.
    const double p = evaluator.evaluate(data.row(r));
    if (p > 1e-290) {
      EXPECT_NEAR(log_p, std::log(p), 1e-9 * std::fabs(std::log(p)));
    }
  }
}

TEST(ModelZoo, EvaluatesRealCorpusRows) {
  const auto model = make_nips_model(10);
  CorpusConfig config;
  config.documents = 32;
  config.vocabulary = 10;
  const auto data = make_bag_of_words(config);
  spn::Evaluator evaluator(model.spn);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double p = evaluator.evaluate(data.row(r));
    EXPECT_GE(p, 0.0);
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(SparseQueries, LosslessTwinOfTheDenseCorpus) {
  // Without an active-words cap the sparse batch is a lossless
  // re-encoding: densifying against zero defaults reproduces every
  // (clamped) corpus byte.
  CorpusConfig config;
  config.documents = 24;
  config.vocabulary = 64;
  config.document_length = 12;  // short documents: most words absent
  const auto corpus = make_bag_of_words(config);
  const compiler::SparseBatch batch = sparse_queries(corpus);
  ASSERT_EQ(batch.sample_count(), corpus.rows());
  ASSERT_EQ(batch.features, corpus.cols());
  const std::vector<std::uint8_t> defaults(corpus.cols(), 0);
  const auto dense = batch.densify(defaults);
  for (std::size_t d = 0; d < corpus.rows(); ++d) {
    for (std::size_t w = 0; w < corpus.cols(); ++w) {
      const auto want = static_cast<std::uint8_t>(
          std::llround(std::min(corpus.at(d, w), 255.0)));
      EXPECT_EQ(dense[d * corpus.cols() + w], want) << d << "," << w;
    }
  }
  // Zipf corpora are sparse: the stream must undercut the dense bytes.
  EXPECT_LT(batch.encoded_bytes(), corpus.rows() * corpus.cols());
}

TEST(SparseQueries, ActiveWordsCapKeepsTheHighestCounts) {
  CorpusConfig config;
  config.documents = 16;
  config.vocabulary = 64;
  config.document_length = 120;  // enough tokens that caps actually bite
  const auto corpus = make_bag_of_words(config);
  const compiler::SparseBatch full = sparse_queries(corpus);
  const compiler::SparseBatch capped = sparse_queries(corpus, 4);
  ASSERT_EQ(capped.sample_count(), corpus.rows());
  for (std::size_t d = 0; d < corpus.rows(); ++d) {
    const std::size_t begin = capped.offsets[d];
    const std::size_t end = capped.offsets[d + 1];
    ASSERT_LE(end - begin, 4u);
    // Every kept count must be >= every dropped count: the cap keeps the
    // top-K words of the document.
    std::uint8_t kept_min = 255;
    for (std::size_t i = begin; i < end; ++i) {
      kept_min = std::min(kept_min, capped.values[i]);
    }
    std::size_t dropped_max = 0;
    for (std::size_t i = full.offsets[d]; i < full.offsets[d + 1]; ++i) {
      bool kept = false;
      for (std::size_t j = begin; j < end; ++j) {
        if (capped.indices[j] == full.indices[i]) kept = true;
      }
      if (!kept) {
        dropped_max = std::max<std::size_t>(dropped_max, full.values[i]);
      }
    }
    if (end > begin && full.offsets[d + 1] - full.offsets[d] > 4) {
      EXPECT_GE(kept_min, dropped_max) << "document " << d;
    }
  }
  // Deterministic: the same corpus caps to the same batch.
  const compiler::SparseBatch again = sparse_queries(corpus, 4);
  EXPECT_EQ(again.indices, capped.indices);
  EXPECT_EQ(again.values, capped.values);
  EXPECT_EQ(again.offsets, capped.offsets);
}

}  // namespace
}  // namespace spnhbm::workload
