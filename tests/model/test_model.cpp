// ModelArtifact / ModelRegistry tests: content-addressed hashing, the
// text-vs-binary load_file sniff, version-aware lookup, aliasing and the
// deferred-unload refcounting that keeps artifacts alive under live pins.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/compiler/serialize.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/model/registry.hpp"
#include "spnhbm/spn/random_spn.hpp"

namespace spnhbm {
namespace {

spn::Spn test_spn(std::uint64_t seed, std::size_t variables = 5) {
  spn::RandomSpnConfig config;
  config.variables = variables;
  config.seed = seed;
  return spn::make_random_spn(config);
}

model::ModelHandle compiled(std::string name, std::string version,
                            std::uint64_t seed = 11) {
  return model::ModelArtifact::compile(std::move(name), std::move(version),
                                       test_spn(seed),
                                       arith::make_float64_backend());
}

/// RAII temp file in the test working directory.
struct TempFile {
  explicit TempFile(std::string path_in, const std::string& contents = "")
      : path(std::move(path_in)) {
    if (!contents.empty()) {
      std::ofstream out(path, std::ios::binary);
      out << contents;
    }
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

constexpr const char* kTextSpn =
    "Sum(0.25*Product(Histogram(V0|[0,128,256];[0.005,0.0028125])\n"
    "               * Histogram(V1|[0,64,256];[0.0078125,0.00260416666666666652]))\n"
    "  + 0.75*Product(Histogram(V0|[0,64,128,256];[0.0078125,0.0078125,0.0])\n"
    "               * Histogram(V1|[0,128,256];[0.0078125,0.0])))\n";

TEST(ModelArtifact, CompileIsContentAddressed) {
  const auto a = compiled("a", "1");
  const auto b = compiled("b", "2");  // same bits, different identity
  EXPECT_EQ(a->content_hash(), b->content_hash());
  EXPECT_EQ(a->content_hash_hex().size(), 16u);
  EXPECT_EQ(a->content_hash_hex(), b->content_hash_hex());

  const auto other_graph = compiled("a", "1", /*seed=*/12);
  EXPECT_NE(a->content_hash(), other_graph->content_hash());

  const auto other_backend = model::ModelArtifact::compile(
      "a", "1", test_spn(11), model::make_backend("lns"));
  EXPECT_NE(a->content_hash(), other_backend->content_hash());
}

TEST(ModelArtifact, IdentityAndDescribe) {
  const auto artifact = compiled("nips10", "3");
  EXPECT_EQ(artifact->name(), "nips10");
  EXPECT_EQ(artifact->version(), "3");
  EXPECT_EQ(artifact->id(), "nips10@3");
  EXPECT_TRUE(artifact->has_spn());
  EXPECT_EQ(artifact->input_features(), 5u);
  const std::string text = artifact->describe();
  EXPECT_NE(text.find("nips10@3"), std::string::npos);
  EXPECT_NE(text.find(artifact->content_hash_hex()), std::string::npos);
}

TEST(ModelArtifact, WrapMatchesCompileHash) {
  // Wrapping an already-compiled module must be recognisably the *same*
  // model as compiling it through the artifact layer.
  const auto via_compile = compiled("m", "1");
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(test_spn(11), *backend);
  const auto via_wrap = model::ModelArtifact::wrap("legacy", module, *backend);
  EXPECT_EQ(via_wrap->id(), "legacy@0");
  EXPECT_EQ(via_wrap->content_hash(), via_compile->content_hash());
}

TEST(ModelArtifact, LoadFileSniffsTextVersusBinary) {
  TempFile text("test_model_text.spn", kTextSpn);
  const auto from_text = model::ModelArtifact::load_file(
      "demo", "1", text.path, arith::make_float64_backend());
  EXPECT_TRUE(from_text->has_spn());
  EXPECT_EQ(from_text->input_features(), 2u);

  TempFile binary("test_model_design.bin");
  compiler::save_design_file(from_text->module(), binary.path);
  const auto from_binary = model::ModelArtifact::load_file(
      "demo", "2", binary.path, arith::make_float64_backend());
  EXPECT_FALSE(from_binary->has_spn());

  // The round trip preserves the compiled bits and the functional result.
  EXPECT_EQ(from_text->content_hash(), from_binary->content_hash());
  const std::vector<std::uint8_t> row = {100, 30};
  EXPECT_DOUBLE_EQ(from_text->module().evaluate(from_text->backend(), row),
                   from_binary->module().evaluate(from_binary->backend(), row));
}

TEST(ModelArtifact, LoadFileMissingPathThrows) {
  EXPECT_THROW(model::ModelArtifact::load_file(
                   "x", "1", "does_not_exist.spn",
                   arith::make_float64_backend()),
               model::ModelError);
}

TEST(ModelArtifact, MakeBackendKnowsThePaperFormats) {
  for (const char* format : {"f64", "cfp", "lns", "posit"}) {
    EXPECT_NE(model::make_backend(format), nullptr) << format;
  }
  EXPECT_THROW(model::make_backend("fp8"), model::ModelError);
}

TEST(ModelRegistry, AddGetAndDuplicateRejection) {
  model::ModelRegistry registry;
  const auto artifact = registry.add(compiled("m", "1"));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.get("m@1"), artifact);
  EXPECT_EQ(registry.get("m"), artifact);  // bare name
  EXPECT_THROW(registry.add(compiled("m", "1")), model::ModelError);
  EXPECT_THROW(registry.add(nullptr), model::ModelError);
  EXPECT_THROW(registry.get("unknown"), model::ModelError);
  EXPECT_EQ(registry.try_get("unknown"), nullptr);
}

TEST(ModelRegistry, BareNameResolvesHighestVersionNumerically) {
  model::ModelRegistry registry;
  registry.add(compiled("m", "2"));
  const auto v10 = registry.add(compiled("m", "10"));
  EXPECT_EQ(registry.get("m"), v10);  // "10" > "2" numerically
  EXPECT_EQ(registry.ids(), (std::vector<std::string>{"m@10", "m@2"}));
}

TEST(ModelRegistry, AmbiguousBareNameListsCandidates) {
  // "07" and "7" are numerically equal, so neither version wins the
  // bare-name lookup — the error must name both ids so the caller can
  // disambiguate without listing the registry.
  model::ModelRegistry registry;
  registry.add(compiled("m", "07"));
  registry.add(compiled("m", "7"));
  registry.add(compiled("m", "2"));  // a clear loser; must not appear
  try {
    registry.get("m");
    FAIL() << "expected ModelError for the version tie";
  } catch (const model::ModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ambiguous"), std::string::npos) << what;
    EXPECT_NE(what.find("m@07"), std::string::npos) << what;
    EXPECT_NE(what.find("m@7"), std::string::npos) << what;
    EXPECT_EQ(what.find("m@2"), std::string::npos) << what;
  }
  // try_get treats ambiguity as a caller error too, not as "missing".
  EXPECT_THROW(registry.try_get("m"), model::ModelError);
  // Exact ids still resolve either artifact.
  EXPECT_EQ(registry.get("m@7")->version(), "7");
  EXPECT_EQ(registry.get("m@07")->version(), "07");
}

TEST(ModelRegistry, AliasesFollowRepointing) {
  model::ModelRegistry registry;
  const auto v1 = registry.add(compiled("m", "1"));
  const auto v2 = registry.add(compiled("m", "2"));
  registry.alias("prod", "m@1");
  EXPECT_EQ(registry.get("prod"), v1);
  registry.alias("prod", "m@2");  // re-pointing is allowed
  EXPECT_EQ(registry.get("prod"), v2);
  EXPECT_THROW(registry.alias("m@1", "m@2"), model::ModelError);  // id clash
  EXPECT_THROW(registry.alias("broken", "nothing"), model::ModelError);
}

TEST(ModelRegistry, UnloadIsDeferredWhileExternallyPinned) {
  model::ModelRegistry registry;
  model::ModelHandle pin = registry.add(compiled("m", "1"));
  registry.add(compiled("free", "1"));

  // An unpinned model frees immediately.
  EXPECT_TRUE(registry.unload("free"));
  EXPECT_EQ(registry.pending_unload_count(), 0u);

  // A pinned model (an engine mid-batch in real life) defers.
  EXPECT_FALSE(registry.unload("m@1"));
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.pending_unload_count(), 1u);
  EXPECT_THROW(registry.get("m@1"), model::ModelError);
  pin.reset();  // last pin drops -> reclaimed
  EXPECT_EQ(registry.pending_unload_count(), 0u);
}

TEST(ModelRegistry, VersionLessIsNumericAware) {
  EXPECT_TRUE(model::version_less("2", "10"));
  EXPECT_FALSE(model::version_less("10", "2"));
  EXPECT_TRUE(model::version_less("1.2", "1.10"));
  EXPECT_FALSE(model::version_less("3", "3"));
}

}  // namespace
}  // namespace spnhbm
