// ModelRegistry under concurrency (run under TSan in CI): alias
// re-pointing races against lookups, and deferred refcounted unload
// races against acquire/release — the registry must stay consistent and
// never free an artifact that a reader still pins.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/model/registry.hpp"
#include "spnhbm/spn/random_spn.hpp"

namespace spnhbm {
namespace {

model::ModelHandle compiled(std::string name, std::string version,
                            std::uint64_t seed = 17) {
  spn::RandomSpnConfig config;
  config.variables = 5;
  config.seed = seed;
  return model::ModelArtifact::compile(std::move(name), std::move(version),
                                       spn::make_random_spn(config),
                                       arith::make_float64_backend());
}

TEST(ModelRegistryConcurrency, AliasRepointingRacesAgainstLookups) {
  model::ModelRegistry registry;
  constexpr int kVersions = 4;
  for (int v = 1; v <= kVersions; ++v) {
    registry.add(compiled("m", std::to_string(v)));
  }
  registry.alias("prod", "m@1");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  // One writer cycles the alias across every version for as long as the
  // readers resolve it. Every resolution must land on *some* valid
  // version — never a torn id, never a null handle, never a throw.
  std::thread writer([&] {
    for (int i = 0; !stop.load(); ++i) {
      registry.alias("prod", "m@" + std::to_string(1 + i % kVersions));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const model::ModelHandle handle = registry.get("prod");
        ASSERT_NE(handle, nullptr);
        EXPECT_EQ(handle->name(), "m");
        lookups.fetch_add(1);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(lookups.load(), 4u * 500u);
  // Re-pointing still works once the dust settles, and the alias resolves
  // to exactly what it was last pointed at.
  registry.alias("prod", "m@3");
  EXPECT_EQ(registry.get("prod")->id(), "m@3");
}

TEST(ModelRegistryConcurrency, DeferredUnloadRacesAgainstAcquireRelease) {
  model::ModelRegistry registry;
  constexpr int kGenerations = 12;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> acquisitions{0};
  // Acquirers continuously pin and release whatever "u" currently is
  // (any generation, or nothing between unload and re-add). A held
  // handle must stay fully usable even when the model is unloaded under
  // it — that is the deferred-unload contract.
  std::vector<std::thread> acquirers;
  for (int r = 0; r < 4; ++r) {
    acquirers.emplace_back([&] {
      while (!stop.load()) {
        model::ModelHandle handle = registry.try_get("u");
        if (handle != nullptr) {
          EXPECT_EQ(handle->name(), "u");
          EXPECT_GT(handle->input_features(), 0u);
          acquisitions.fetch_add(1);
          handle.reset();  // the release half of the churn
        }
      }
    });
  }
  // The control plane cycles generations: add, let the acquirers pin it,
  // unload (deferred while any acquirer still holds its handle), repeat.
  for (int generation = 1; generation <= kGenerations; ++generation) {
    registry.add(compiled("u", std::to_string(generation)));
    // Give the acquirers a window to actually pin this generation.
    while (acquisitions.load() <
           static_cast<std::uint64_t>(generation) * 50) {
      std::this_thread::yield();
    }
    registry.unload("u");  // immediate or deferred, both are legal here
  }
  stop.store(true);
  for (auto& acquirer : acquirers) acquirer.join();

  // Every acquirer handle is gone: nothing may remain pending.
  EXPECT_EQ(registry.pending_unload_count(), 0u);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.try_get("u"), nullptr);
  EXPECT_GT(acquisitions.load(),
            static_cast<std::uint64_t>(kGenerations) * 50);
}

}  // namespace
}  // namespace spnhbm
