#include "spnhbm/arith/lns.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/util/rng.hpp"

namespace spnhbm::arith {
namespace {

LnsFormat fmt(int i, int f, int lut = 11) {
  LnsFormat format;
  format.integer_bits = i;
  format.fraction_bits = f;
  format.lut_address_bits = lut;
  return format;
}

TEST(Lns, ZeroIsReservedCode) {
  const LnsContext ctx(fmt(8, 22));
  EXPECT_EQ(ctx.encode(0.0), ctx.zero_code());
  EXPECT_DOUBLE_EQ(ctx.decode(ctx.zero_code()), 0.0);
  EXPECT_EQ(ctx.encode(-1.0), ctx.zero_code());  // negatives unrepresentable
}

TEST(Lns, PowersOfTwoAreExact) {
  const LnsContext ctx(fmt(8, 22));
  for (int k = -100; k <= 100; k += 7) {
    const double v = std::ldexp(1.0, k);
    EXPECT_DOUBLE_EQ(ctx.decode(ctx.encode(v)), v) << "k=" << k;
  }
}

TEST(Lns, RepresentsVerySmallProbabilities) {
  // The headline property of [11]: log-scale reaches far below double's
  // subnormal range limit for products of many small probabilities.
  const LnsContext ctx(fmt(10, 22));
  const double tiny = 1e-70;
  EXPECT_NEAR(ctx.decode(ctx.encode(tiny)) / tiny, 1.0, 1e-5);
  EXPECT_LT(ctx.min_positive(), 1e-100);
}

TEST(Lns, MulIsExactInLogDomain) {
  const LnsContext ctx(fmt(8, 22));
  // Products of powers of two are exact fixed-point adds.
  const auto a = ctx.encode(0.25);
  const auto b = ctx.encode(0.5);
  EXPECT_DOUBLE_EQ(ctx.decode(ctx.mul(a, b)), 0.125);
}

TEST(Lns, MulZeroAnnihilates) {
  const LnsContext ctx(fmt(8, 22));
  const auto x = ctx.encode(0.7);
  EXPECT_EQ(ctx.mul(x, ctx.zero_code()), ctx.zero_code());
  EXPECT_EQ(ctx.mul(ctx.zero_code(), x), ctx.zero_code());
}

TEST(Lns, MulUnderflowSaturatesToMinPositive) {
  const LnsContext ctx(fmt(4, 8));
  const auto tiny = ctx.encode(ctx.min_positive());
  const auto result = ctx.mul(tiny, tiny);
  EXPECT_NE(result, ctx.zero_code());
  EXPECT_DOUBLE_EQ(ctx.decode(result), ctx.min_positive());
}

TEST(Lns, MulOverflowSaturatesToMax) {
  const LnsContext ctx(fmt(4, 8));
  const auto big = ctx.encode(ctx.max_value());
  EXPECT_DOUBLE_EQ(ctx.decode(ctx.mul(big, big)), ctx.max_value());
}

TEST(Lns, AddIdentity) {
  const LnsContext ctx(fmt(8, 22));
  const auto x = ctx.encode(0.3);
  EXPECT_EQ(ctx.add(x, ctx.zero_code()), x);
  EXPECT_EQ(ctx.add(ctx.zero_code(), x), x);
}

TEST(Lns, AddIsCommutative) {
  const LnsContext ctx(fmt(8, 22));
  Rng rng(111);
  for (int i = 0; i < 2000; ++i) {
    const auto a = ctx.encode(rng.next_double());
    const auto b = ctx.encode(rng.next_double());
    EXPECT_EQ(ctx.add(a, b), ctx.add(b, a));
  }
}

TEST(Lns, AddOfEqualValuesDoubles) {
  const LnsContext ctx(fmt(8, 22));
  // x + x = 2x: d = 0, Δ+(0) = 1 exactly.
  const auto x = ctx.encode(0.375);
  EXPECT_NEAR(ctx.decode(ctx.add(x, x)), 0.75, 1e-5);
}

TEST(Lns, AddWithHugeMagnitudeGapReturnsLarger) {
  const LnsContext ctx(fmt(10, 22));
  const auto big = ctx.encode(1.0);
  const auto small = ctx.encode(1e-30);
  EXPECT_EQ(ctx.add(big, small), big);
}

TEST(Lns, LutSizeFollowsAddressBits) {
  const LnsContext ctx(fmt(8, 22, 9));
  EXPECT_EQ(ctx.lut_entries(), (1u << 9) + 1);
}

TEST(Lns, ValidateRejectsBadWidths) {
  EXPECT_THROW(LnsContext(fmt(1, 22)), std::logic_error);
  EXPECT_THROW(LnsContext(fmt(8, 2)), std::logic_error);
  EXPECT_THROW(LnsContext(fmt(8, 22, 2)), std::logic_error);
}

// Property sweep over formats: round-trip accuracy tracks fraction bits and
// addition error tracks the LUT resolution.
struct LnsParam {
  int integer_bits;
  int fraction_bits;
  int lut_address_bits;
};

class LnsPropertyTest : public ::testing::TestWithParam<LnsParam> {};

TEST_P(LnsPropertyTest, RoundTripRelativeErrorBounded) {
  const auto p = GetParam();
  const LnsContext ctx(fmt(p.integer_bits, p.fraction_bits, p.lut_address_bits));
  // Half-ulp in log2 domain -> relative value error ~ ln2 * 2^-(f+1).
  const double bound = std::ldexp(std::log(2.0), -(p.fraction_bits + 1)) * 1.01;
  Rng rng(333 + p.fraction_bits);
  for (int i = 0; i < 3000; ++i) {
    const double v = std::exp(rng.next_uniform(-20.0, 2.0));
    const double decoded = ctx.decode(ctx.encode(v));
    EXPECT_LE(std::fabs(decoded - v) / v, bound) << ctx.format().describe();
  }
}

TEST_P(LnsPropertyTest, MulRelativeErrorBounded) {
  const auto p = GetParam();
  const LnsContext ctx(fmt(p.integer_bits, p.fraction_bits, p.lut_address_bits));
  const double bound = std::ldexp(1.0, -(p.fraction_bits - 2));
  Rng rng(555 + p.fraction_bits);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_uniform(0.01, 1.0);
    const double y = rng.next_uniform(0.01, 1.0);
    const double got = ctx.decode(ctx.mul(ctx.encode(x), ctx.encode(y)));
    EXPECT_NEAR(got / (x * y), 1.0, bound) << ctx.format().describe();
  }
}

TEST_P(LnsPropertyTest, AddRelativeErrorBounded) {
  const auto p = GetParam();
  const LnsContext ctx(fmt(p.integer_bits, p.fraction_bits, p.lut_address_bits));
  // LUT interpolation dominates; allow a generous but still-tight bound that
  // scales with the LUT resolution.
  const double bound =
      std::ldexp(1.0, -(std::min(p.fraction_bits, 2 * p.lut_address_bits) - 4));
  Rng rng(777 + p.lut_address_bits);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_uniform(0.01, 1.0);
    const double y = rng.next_uniform(0.01, 1.0);
    const double got = ctx.decode(ctx.add(ctx.encode(x), ctx.encode(y)));
    EXPECT_NEAR(got / (x + y), 1.0, bound) << ctx.format().describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, LnsPropertyTest,
                         ::testing::Values(LnsParam{8, 22, 11},
                                           LnsParam{8, 16, 10},
                                           LnsParam{10, 30, 12},
                                           LnsParam{6, 12, 8},
                                           LnsParam{8, 22, 6}));

}  // namespace
}  // namespace spnhbm::arith
