#include "spnhbm/arith/cfp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/util/rng.hpp"

namespace spnhbm::arith {
namespace {

CfpFormat fmt(int e, int m, bool sign = false,
              Rounding r = Rounding::kNearestEven) {
  CfpFormat f;
  f.exponent_bits = e;
  f.mantissa_bits = m;
  f.has_sign = sign;
  f.rounding = r;
  return f;
}

TEST(Cfp, ZeroRoundTrips) {
  const auto f = fmt(8, 22);
  EXPECT_EQ(cfp_encode(f, 0.0), 0u);
  EXPECT_DOUBLE_EQ(cfp_decode(f, 0), 0.0);
}

TEST(Cfp, PowersOfTwoAreExact) {
  const auto f = fmt(8, 22);
  for (int k = -60; k <= 60; ++k) {
    const double v = std::ldexp(1.0, k);
    EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_encode(f, v)), v) << "k=" << k;
  }
}

TEST(Cfp, UnsignedFormatClampsNegativeToZero) {
  const auto f = fmt(8, 22);
  EXPECT_EQ(cfp_encode(f, -0.5), 0u);
}

TEST(Cfp, SignedFormatRoundTripsNegative) {
  const auto f = fmt(8, 22, /*sign=*/true);
  EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_encode(f, -0.75)), -0.75);
}

TEST(Cfp, EncodeRoundsToNearestEven) {
  // 2 mantissa bits: representable significands 1.00, 1.01, 1.10, 1.11.
  const auto f = fmt(6, 2);
  // 1.125 is exactly between 1.00 (even mantissa 00) and 1.25 (mantissa 01):
  // ties go to even -> 1.0.
  EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_encode(f, 1.125)), 1.0);
  // 1.375 is between 1.25 (01) and 1.5 (10): tie to even -> 1.5.
  EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_encode(f, 1.375)), 1.5);
  // Non-ties round to nearest.
  EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_encode(f, 1.2)), 1.25);
}

TEST(Cfp, EncodeTruncates) {
  const auto f = fmt(6, 2, false, Rounding::kTruncate);
  EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_encode(f, 1.24)), 1.0);
  EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_encode(f, 1.99)), 1.75);
}

TEST(Cfp, OverflowSaturatesToMax) {
  const auto f = fmt(4, 4);  // tiny range: max exp field 15, bias 7
  const double max_val = cfp_decode(f, cfp_max_value(f));
  EXPECT_EQ(cfp_encode(f, 1e30), cfp_max_value(f));
  EXPECT_EQ(cfp_encode(f, max_val * 2), cfp_max_value(f));
}

TEST(Cfp, UnderflowFlushesToZero) {
  const auto f = fmt(4, 4);
  const double min_pos = cfp_min_positive(f);
  EXPECT_GT(min_pos, 0.0);
  EXPECT_EQ(cfp_encode(f, min_pos / 4), 0u);
  EXPECT_NE(cfp_encode(f, min_pos), 0u);
}

TEST(Cfp, InfAndNanHandling) {
  const auto f = fmt(8, 22);
  EXPECT_EQ(cfp_encode(f, std::numeric_limits<double>::infinity()),
            cfp_max_value(f));
  EXPECT_EQ(cfp_encode(f, std::numeric_limits<double>::quiet_NaN()), 0u);
}

TEST(Cfp, AddIdentity) {
  const auto f = fmt(8, 22);
  const auto x = cfp_encode(f, 0.3125);
  EXPECT_EQ(cfp_add(f, x, 0), x);
  EXPECT_EQ(cfp_add(f, 0, x), x);
}

TEST(Cfp, AddExactValues) {
  const auto f = fmt(8, 22);
  const auto a = cfp_encode(f, 0.25);
  const auto b = cfp_encode(f, 0.5);
  EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_add(f, a, b)), 0.75);
}

TEST(Cfp, AddIsCommutative) {
  const auto f = fmt(8, 22);
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    const auto a = cfp_encode(f, rng.next_uniform(0.0, 2.0));
    const auto b = cfp_encode(f, rng.next_uniform(0.0, 2.0));
    EXPECT_EQ(cfp_add(f, a, b), cfp_add(f, b, a));
  }
}

TEST(Cfp, MulIsCommutative) {
  const auto f = fmt(8, 22);
  Rng rng(103);
  for (int i = 0; i < 2000; ++i) {
    const auto a = cfp_encode(f, rng.next_double());
    const auto b = cfp_encode(f, rng.next_double());
    EXPECT_EQ(cfp_mul(f, a, b), cfp_mul(f, b, a));
  }
}

TEST(Cfp, MulByOneAndZero) {
  const auto f = fmt(8, 22);
  const auto one = cfp_encode(f, 1.0);
  const auto x = cfp_encode(f, 0.613);
  EXPECT_EQ(cfp_mul(f, x, one), x);
  EXPECT_EQ(cfp_mul(f, x, 0), 0u);
}

TEST(Cfp, MulExactPowersOfTwo) {
  const auto f = fmt(8, 22);
  const auto a = cfp_encode(f, 0.25);
  const auto b = cfp_encode(f, 0.5);
  EXPECT_DOUBLE_EQ(cfp_decode(f, cfp_mul(f, a, b)), 0.125);
}

TEST(Cfp, SignedSubtractionCancels) {
  const auto f = fmt(8, 22, /*sign=*/true);
  const auto a = cfp_encode(f, 0.75);
  const auto b = cfp_encode(f, -0.75);
  EXPECT_EQ(cfp_add(f, a, b), 0u);
}

TEST(Cfp, SignedSubtractionNormalises) {
  const auto f = fmt(8, 22, /*sign=*/true);
  const auto a = cfp_encode(f, 1.0);
  const auto b = cfp_encode(f, -0.9375);
  EXPECT_NEAR(cfp_decode(f, cfp_add(f, a, b)), 0.0625, 1e-6);
}

// Property sweep: encoding error must be bounded by half an ulp (RNE) or a
// full ulp (truncate) across formats; add/mul must match double arithmetic
// to within format precision for values well inside the exponent range.
struct CfpParam {
  int exponent_bits;
  int mantissa_bits;
  Rounding rounding;
};

class CfpPropertyTest : public ::testing::TestWithParam<CfpParam> {};

TEST_P(CfpPropertyTest, EncodeErrorWithinUlpBound) {
  const auto p = GetParam();
  const auto f = fmt(p.exponent_bits, p.mantissa_bits, false, p.rounding);
  const double ulp_bound =
      std::ldexp(p.rounding == Rounding::kNearestEven ? 0.5 : 1.0,
                 -p.mantissa_bits);
  Rng rng(202 + p.mantissa_bits);
  // Sample log-uniformly, but strictly inside the format's exponent range
  // (values below cfp_min_positive legitimately flush to zero).
  const double lo = std::log(cfp_min_positive(f) * 4.0);
  const double hi = std::log(cfp_decode(f, cfp_max_value(f)) / 4.0);
  for (int i = 0; i < 3000; ++i) {
    const double v = std::exp(rng.next_uniform(std::max(lo, -20.0),
                                               std::min(hi, 5.0)));
    const double decoded = cfp_decode(f, cfp_encode(f, v));
    EXPECT_LE(std::fabs(decoded - v) / v, ulp_bound * (1 + 1e-12))
        << "v=" << v << " fmt=" << f.describe();
  }
}

TEST_P(CfpPropertyTest, MulMatchesDoubleWithinPrecision) {
  const auto p = GetParam();
  const auto f = fmt(p.exponent_bits, p.mantissa_bits, false, p.rounding);
  const double tolerance = std::ldexp(4.0, -p.mantissa_bits);
  Rng rng(404 + p.mantissa_bits);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_uniform(0.01, 1.0);
    const double y = rng.next_uniform(0.01, 1.0);
    const double got = cfp_decode(f, cfp_mul(f, cfp_encode(f, x), cfp_encode(f, y)));
    const double want = cfp_decode(f, cfp_encode(f, x)) * cfp_decode(f, cfp_encode(f, y));
    EXPECT_NEAR(got / want, 1.0, tolerance) << f.describe();
  }
}

TEST_P(CfpPropertyTest, AddMatchesDoubleWithinPrecision) {
  const auto p = GetParam();
  const auto f = fmt(p.exponent_bits, p.mantissa_bits, false, p.rounding);
  const double tolerance = std::ldexp(4.0, -p.mantissa_bits);
  Rng rng(606 + p.mantissa_bits);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_uniform(0.01, 1.0);
    const double y = rng.next_uniform(0.01, 1.0);
    const double got = cfp_decode(f, cfp_add(f, cfp_encode(f, x), cfp_encode(f, y)));
    const double want = cfp_decode(f, cfp_encode(f, x)) + cfp_decode(f, cfp_encode(f, y));
    EXPECT_NEAR(got / want, 1.0, tolerance) << f.describe();
  }
}

TEST_P(CfpPropertyTest, MonotoneEncoding) {
  const auto p = GetParam();
  const auto f = fmt(p.exponent_bits, p.mantissa_bits, false, p.rounding);
  // Unsigned CFP bit patterns must order like the values they encode.
  Rng rng(808);
  for (int i = 0; i < 2000; ++i) {
    const double x = std::exp(rng.next_uniform(-10.0, 3.0));
    const double y = std::exp(rng.next_uniform(-10.0, 3.0));
    const auto ex = cfp_encode(f, x);
    const auto ey = cfp_encode(f, y);
    if (x <= y) {
      EXPECT_LE(cfp_decode(f, ex), cfp_decode(f, ey));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, CfpPropertyTest,
    ::testing::Values(CfpParam{8, 22, Rounding::kNearestEven},
                      CfpParam{8, 22, Rounding::kTruncate},
                      CfpParam{5, 10, Rounding::kNearestEven},
                      CfpParam{8, 23, Rounding::kNearestEven},
                      CfpParam{11, 52, Rounding::kNearestEven},
                      CfpParam{6, 14, Rounding::kTruncate}));

TEST(Cfp, ValidateRejectsBadWidths) {
  EXPECT_THROW(fmt(1, 10).validate(), std::logic_error);
  EXPECT_THROW(fmt(8, 0).validate(), std::logic_error);
  EXPECT_THROW(fmt(16, 53).validate(), std::logic_error);
}

TEST(Cfp, MatchesIeeeSingleOnRandomOps) {
  // e=8, m=23, signed, RNE is exactly IEEE binary32 (minus
  // subnormals/inf/nan). Cross-check mul against the hardware float path.
  const auto f = fmt(8, 23, /*sign=*/true);
  Rng rng(909);
  for (int i = 0; i < 3000; ++i) {
    const float x = static_cast<float>(rng.next_uniform(0.01, 100.0));
    const float y = static_cast<float>(rng.next_uniform(0.01, 100.0));
    const double got = cfp_decode(f, cfp_mul(f, cfp_encode(f, x), cfp_encode(f, y)));
    EXPECT_DOUBLE_EQ(got, static_cast<double>(x * y));
  }
}

TEST(Cfp, MatchesIeeeSingleOnRandomAdds) {
  const auto f = fmt(8, 23, /*sign=*/true);
  Rng rng(910);
  for (int i = 0; i < 3000; ++i) {
    const float x = static_cast<float>(rng.next_uniform(0.01, 100.0));
    const float y = static_cast<float>(rng.next_uniform(0.01, 100.0));
    const double got = cfp_decode(f, cfp_add(f, cfp_encode(f, x), cfp_encode(f, y)));
    EXPECT_DOUBLE_EQ(got, static_cast<double>(x + y));
  }
}

}  // namespace
}  // namespace spnhbm::arith
