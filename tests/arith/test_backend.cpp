#include "spnhbm/arith/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "spnhbm/arith/error_analysis.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::arith {
namespace {

std::vector<std::unique_ptr<ArithBackend>> all_backends() {
  std::vector<std::unique_ptr<ArithBackend>> backends;
  backends.push_back(make_float64_backend());
  backends.push_back(make_cfp_backend(paper_cfp_format()));
  backends.push_back(make_lns_backend(paper_lns_format()));
  backends.push_back(make_posit_backend(paper_posit_format()));
  return backends;
}

TEST(Backend, KindsAndWidths) {
  const auto f64 = make_float64_backend();
  EXPECT_EQ(f64->kind(), FormatKind::kFloat64);
  EXPECT_EQ(f64->width_bits(), 64);

  const auto cfp = make_cfp_backend(paper_cfp_format());
  EXPECT_EQ(cfp->kind(), FormatKind::kCfp);
  EXPECT_EQ(cfp->width_bits(), 30);  // 8 exponent + 22 mantissa, unsigned

  const auto lns = make_lns_backend(paper_lns_format());
  EXPECT_EQ(lns->kind(), FormatKind::kLns);
  EXPECT_EQ(lns->width_bits(), 30);  // 8 integer + 22 fraction
}

TEST(Backend, Float64IsExact) {
  const auto backend = make_float64_backend();
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    EXPECT_DOUBLE_EQ(backend->decode(backend->add(backend->encode(x),
                                                  backend->encode(y))),
                     x + y);
    EXPECT_DOUBLE_EQ(backend->decode(backend->mul(backend->encode(x),
                                                  backend->encode(y))),
                     x * y);
  }
}

TEST(Backend, AllBackendsAgreeOnProbabilityArithmetic) {
  // Each backend must compute sum-of-products within its own precision.
  Rng rng(13);
  for (const auto& backend : all_backends()) {
    for (int i = 0; i < 200; ++i) {
      const double a = rng.next_uniform(0.05, 0.95);
      const double b = rng.next_uniform(0.05, 0.95);
      const double c = rng.next_uniform(0.05, 0.95);
      const double want = a * b + c;
      const auto got_bits = backend->add(
          backend->mul(backend->encode(a), backend->encode(b)),
          backend->encode(c));
      EXPECT_NEAR(backend->decode(got_bits) / want, 1.0, 1e-4)
          << backend->describe();
    }
  }
}

TEST(Backend, LatenciesArePositiveAndFormatShaped) {
  const auto f64 = make_float64_backend();
  const auto cfp = make_cfp_backend(paper_cfp_format());
  const auto lns = make_lns_backend(paper_lns_format());
  // The prior-work float64 cores are much deeper than the CFP operators —
  // this drives the pipeline-depth difference behind Table I's register
  // counts.
  EXPECT_GT(f64->add_latency_cycles(), cfp->add_latency_cycles());
  EXPECT_GT(f64->mul_latency_cycles(), cfp->mul_latency_cycles());
  // LNS: multiplication is a plain fixed-point add, the cheapest operator.
  EXPECT_EQ(lns->mul_latency_cycles(), 1);
  EXPECT_GT(lns->add_latency_cycles(), lns->mul_latency_cycles());
}

TEST(ErrorAnalysis, RelativeError) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(0.5, 0.0), 0.5);
}

TEST(ErrorAnalysis, RoundtripReportOrdersFormatsByPrecision) {
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(std::exp(rng.next_uniform(-30.0, 0.0)));

  const auto f64 = roundtrip_error(*make_float64_backend(), values);
  const auto cfp = roundtrip_error(*make_cfp_backend(paper_cfp_format()), values);

  CfpFormat narrow;
  narrow.exponent_bits = 8;
  narrow.mantissa_bits = 10;
  const auto cfp_narrow = roundtrip_error(*make_cfp_backend(narrow), values);

  EXPECT_EQ(f64.max_relative, 0.0);
  EXPECT_GT(cfp.max_relative, 0.0);
  EXPECT_GT(cfp_narrow.max_relative, cfp.max_relative);
  EXPECT_EQ(cfp.samples, values.size());
}

TEST(ErrorAnalysis, AccumulationErrorStaysSmallForPaperFormats) {
  Rng rng(19);
  std::vector<std::vector<double>> chains;
  for (int c = 0; c < 64; ++c) {
    std::vector<double> chain;
    for (int i = 0; i < 10; ++i) chain.push_back(rng.next_uniform(0.1, 1.0));
    chains.push_back(std::move(chain));
  }
  for (const auto& backend : all_backends()) {
    const auto report = accumulation_error(*backend, chains);
    EXPECT_LT(report.max_relative, 1e-3) << backend->describe();
    EXPECT_EQ(report.samples, chains.size());
  }
}

TEST(Backend, PaperFormatsMatchPublishedConfigs) {
  EXPECT_EQ(paper_cfp_format().exponent_bits, 8);
  EXPECT_EQ(paper_cfp_format().mantissa_bits, 22);
  EXPECT_FALSE(paper_cfp_format().has_sign);
  EXPECT_EQ(paper_lns_format().integer_bits, 8);
  EXPECT_EQ(paper_lns_format().fraction_bits, 22);
}

TEST(Backend, FormatKindNames) {
  EXPECT_STREQ(format_kind_name(FormatKind::kFloat64), "float64");
  EXPECT_STREQ(format_kind_name(FormatKind::kCfp), "cfp");
  EXPECT_STREQ(format_kind_name(FormatKind::kLns), "lns");
}

}  // namespace
}  // namespace spnhbm::arith
