#include "spnhbm/arith/posit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::arith {
namespace {

PositFormat fmt(int width, int es) {
  PositFormat format;
  format.width = width;
  format.exponent_size = es;
  return format;
}

TEST(Posit, SpecialPatterns) {
  const auto p32 = fmt(32, 2);
  EXPECT_EQ(posit_zero(p32), 0u);
  EXPECT_EQ(posit_nar(p32), 0x80000000u);
  EXPECT_DOUBLE_EQ(posit_decode(p32, 0), 0.0);
  EXPECT_TRUE(std::isnan(posit_decode(p32, 0x80000000u)));
}

TEST(Posit, StandardUnitEncodings) {
  // 1.0 encodes as 01000... in every posit format.
  EXPECT_EQ(posit_encode(fmt(32, 2), 1.0), 0x40000000u);
  EXPECT_EQ(posit_encode(fmt(16, 1), 1.0), 0x4000u);
  EXPECT_EQ(posit_encode(fmt(8, 0), 1.0), 0x40u);
}

TEST(Posit, KnownPosit8Values) {
  // posit<8,0>, useed = 2:
  //   2.0  = 0 110 00000 -> 0x60 (regime k=1, empty fraction)
  //   0.5  = 0 01 00000  -> 0x20 (regime k=-1)
  //   1.5  = 0 10 10000  -> 0x50 (k=0, fraction .1)
  //   0.75 = 0 01 10000  -> 0x30 (k=-1, fraction .1)
  const auto p8 = fmt(8, 0);
  EXPECT_EQ(posit_encode(p8, 2.0), 0x60u);
  EXPECT_EQ(posit_encode(p8, 0.5), 0x20u);
  EXPECT_EQ(posit_encode(p8, 1.5), 0x50u);
  EXPECT_EQ(posit_encode(p8, 0.75), 0x30u);
  EXPECT_DOUBLE_EQ(posit_decode(p8, 0x60), 2.0);
  EXPECT_DOUBLE_EQ(posit_decode(p8, 0x20), 0.5);
  EXPECT_DOUBLE_EQ(posit_decode(p8, 0x50), 1.5);
  EXPECT_DOUBLE_EQ(posit_decode(p8, 0x30), 0.75);
}

TEST(Posit, MaxposMinpos) {
  const auto p16 = fmt(16, 1);
  // maxpos(16,1) = useed^(n-2) = 4^14 = 2^28.
  EXPECT_DOUBLE_EQ(posit_maxpos(p16), std::ldexp(1.0, 28));
  EXPECT_DOUBLE_EQ(posit_minpos(p16), std::ldexp(1.0, -28));
  // maxpos pattern: 0111...1; minpos pattern: 0...01.
  EXPECT_EQ(posit_encode(p16, posit_maxpos(p16)), 0x7FFFu);
  EXPECT_EQ(posit_encode(p16, posit_minpos(p16)), 0x0001u);
}

TEST(Posit, NoUnderflowToZeroNoOverflowToInf) {
  const auto p16 = fmt(16, 1);
  EXPECT_EQ(posit_encode(p16, 1e-30), 0x0001u);          // clamps to minpos
  EXPECT_EQ(posit_encode(p16, 1e30), 0x7FFFu);           // clamps to maxpos
  const auto tiny = posit_encode(p16, posit_minpos(p16));
  EXPECT_NE(posit_mul(p16, tiny, tiny), 0u);             // stays minpos
}

TEST(Posit, NegativeValuesRoundTrip) {
  const auto p32 = fmt(32, 2);
  for (const double v : {-1.0, -0.375, -2.5, -100.0}) {
    EXPECT_DOUBLE_EQ(posit_decode(p32, posit_encode(p32, v)), v);
  }
}

TEST(Posit, RoundTripExactForSmallSignificands) {
  const auto p32 = fmt(32, 2);
  // Values with few significant bits near 1.0 are exact in posit<32,2>.
  for (const double v : {1.0, 0.5, 0.25, 0.75, 1.5, 3.0, 0.046875}) {
    EXPECT_DOUBLE_EQ(posit_decode(p32, posit_encode(p32, v)), v);
  }
}

TEST(Posit, TaperedPrecisionIsHighestNearOne) {
  const auto p16 = fmt(16, 1);
  Rng rng(31);
  const auto relative_error_at = [&](double center) {
    double worst = 0.0;
    for (int i = 0; i < 500; ++i) {
      const double v = center * (1.0 + rng.next_uniform(-0.4, 0.4));
      const double decoded = posit_decode(p16, posit_encode(p16, v));
      worst = std::max(worst, std::fabs(decoded - v) / v);
    }
    return worst;
  };
  // Precision at 1.0 is far better than out at 2^20.
  EXPECT_LT(relative_error_at(1.0) * 50, relative_error_at(1048576.0));
}

TEST(Posit, MulMatchesDoubleWithinPrecision) {
  const auto p32 = fmt(32, 2);
  Rng rng(33);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.next_uniform(0.01, 1.0);
    const double y = rng.next_uniform(0.01, 1.0);
    const double got =
        posit_decode(p32, posit_mul(p32, posit_encode(p32, x),
                                    posit_encode(p32, y)));
    EXPECT_NEAR(got / (x * y), 1.0, 1e-7);
  }
}

TEST(Posit, AddMatchesDoubleWithinPrecision) {
  const auto p32 = fmt(32, 2);
  Rng rng(35);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.next_uniform(0.01, 1.0);
    const double y = rng.next_uniform(0.01, 1.0);
    const double got =
        posit_decode(p32, posit_add(p32, posit_encode(p32, x),
                                    posit_encode(p32, y)));
    EXPECT_NEAR(got / (x + y), 1.0, 1e-7);
  }
}

TEST(Posit, AddIdentityAndCommutativity) {
  const auto p32 = fmt(32, 2);
  Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    const auto a = posit_encode(p32, rng.next_double());
    const auto b = posit_encode(p32, rng.next_double());
    EXPECT_EQ(posit_add(p32, a, 0), a);
    EXPECT_EQ(posit_add(p32, 0, a), a);
    EXPECT_EQ(posit_add(p32, a, b), posit_add(p32, b, a));
    EXPECT_EQ(posit_mul(p32, a, b), posit_mul(p32, b, a));
  }
}

TEST(Posit, SignedCancellation) {
  const auto p32 = fmt(32, 2);
  const auto a = posit_encode(p32, 0.75);
  const auto b = posit_encode(p32, -0.75);
  EXPECT_EQ(posit_add(p32, a, b), 0u);
}

TEST(Posit, NarPropagates) {
  const auto p32 = fmt(32, 2);
  const auto x = posit_encode(p32, 0.5);
  EXPECT_EQ(posit_add(p32, posit_nar(p32), x), posit_nar(p32));
  EXPECT_EQ(posit_mul(p32, posit_nar(p32), x), posit_nar(p32));
}

// Property sweep across formats: round-trip monotonicity and bounded error
// in the "golden zone" around 1.0.
struct PositParam {
  int width;
  int es;
};
class PositPropertyTest : public ::testing::TestWithParam<PositParam> {};

TEST_P(PositPropertyTest, RoundTripBoundedInGoldenZone) {
  const auto p = GetParam();
  const auto format = fmt(p.width, p.es);
  // Around 1.0 the fraction field has ~(width - 3 - es) bits.
  const double bound = std::ldexp(1.0, -(p.width - 4 - p.es));
  Rng rng(41 + p.width);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.next_uniform(0.5, 2.0);
    const double decoded = posit_decode(format, posit_encode(format, v));
    EXPECT_NEAR(decoded / v, 1.0, bound) << format.describe();
  }
}

TEST_P(PositPropertyTest, EncodingIsMonotone) {
  const auto p = GetParam();
  const auto format = fmt(p.width, p.es);
  Rng rng(43 + p.width);
  for (int i = 0; i < 2000; ++i) {
    const double x = std::exp(rng.next_uniform(-8.0, 8.0));
    const double y = std::exp(rng.next_uniform(-8.0, 8.0));
    const auto ex = posit_encode(format, x);
    const auto ey = posit_encode(format, y);
    if (x <= y) {
      // Positive posit patterns order like their values.
      EXPECT_LE(ex, ey) << format.describe() << " x=" << x << " y=" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, PositPropertyTest,
                         ::testing::Values(PositParam{32, 2}, PositParam{16, 1},
                                           PositParam{16, 2}, PositParam{8, 0},
                                           PositParam{24, 1}));

TEST(PositBackend, PluggedIntoBackendInterface) {
  const auto backend = make_posit_backend(paper_posit_format());
  EXPECT_EQ(backend->kind(), FormatKind::kPosit);
  EXPECT_EQ(backend->width_bits(), 32);
  EXPECT_STREQ(format_kind_name(backend->kind()), "posit");
  const auto a = backend->encode(0.25);
  const auto b = backend->encode(0.5);
  EXPECT_DOUBLE_EQ(backend->decode(backend->mul(a, b)), 0.125);
  EXPECT_DOUBLE_EQ(backend->decode(backend->add(a, b)), 0.75);
  EXPECT_GT(backend->mul_latency_cycles(), 0);
}

TEST(Posit, ValidateRejectsBadFormats) {
  EXPECT_THROW(fmt(2, 0).validate(), std::logic_error);
  EXPECT_THROW(fmt(33, 2).validate(), std::logic_error);
  EXPECT_THROW(fmt(16, 4).validate(), std::logic_error);
}

}  // namespace
}  // namespace spnhbm::arith
