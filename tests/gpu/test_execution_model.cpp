#include "spnhbm/gpu/execution_model.hpp"

#include <gtest/gtest.h>

#include "spnhbm/baselines/reference_platforms.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::gpu {
namespace {

compiler::DatapathModule compile_nips(std::size_t variables) {
  const auto model = workload::make_nips_model(variables);
  const auto backend = arith::make_float64_backend();
  return compiler::compile_spn(model.spn, *backend);
}

TEST(GpuModel, BreakdownComponentsArePositive) {
  const GpuExecutionModel model;
  const auto module = compile_nips(10);
  const auto breakdown = model.batch_breakdown(module, 1 << 19);
  EXPECT_GT(breakdown.launch_time, 0);
  EXPECT_GT(breakdown.gather_time, 0);
  EXPECT_GT(breakdown.elementwise_time, 0);
  EXPECT_GT(breakdown.transfer_time, 0);
  EXPECT_EQ(breakdown.total(),
            breakdown.launch_time + breakdown.gather_time +
                breakdown.elementwise_time + breakdown.transfer_time);
}

TEST(GpuModel, LargerBatchesAmortiseLaunches) {
  const GpuExecutionModel model;
  const auto module = compile_nips(10);
  const double small = model.throughput(module, 1 << 14);
  const double large = model.throughput(module, 1 << 20);
  EXPECT_GT(large, 2.0 * small);
}

TEST(GpuModel, ThroughputSaturatesAtMemoryBound) {
  const GpuExecutionModel model;
  const auto module = compile_nips(10);
  const double huge = model.throughput(module, 1ull << 26);
  const double huger = model.throughput(module, 1ull << 28);
  EXPECT_NEAR(huger / huge, 1.0, 0.05);  // launch cost fully amortised
}

TEST(GpuModel, BiggerGraphsAreSlower) {
  const GpuExecutionModel model;
  EXPECT_GT(model.throughput(compile_nips(10)),
            2.0 * model.throughput(compile_nips(80)));
}

TEST(GpuModel, TracksReconstructedV100CurveInShape) {
  // The mechanistic model must land within ~35% of the curve
  // reconstructed from the paper's published speedups, across the zoo.
  const GpuExecutionModel model;
  const auto reference = baselines::tesla_v100_curve();
  for (const std::size_t size : workload::nips_benchmark_sizes()) {
    const double mechanistic = model.throughput(compile_nips(size));
    const double reconstructed = reference.at(size);
    EXPECT_NEAR(mechanistic / reconstructed, 1.0, 0.35)
        << "NIPS" << size << ": model " << mechanistic / 1e6
        << " Ms/s vs reference " << reconstructed / 1e6 << " Ms/s";
  }
}

TEST(GpuModel, LaunchOverheadDominatesSmallBatches) {
  const GpuExecutionModel model;
  const auto module = compile_nips(80);
  const auto breakdown = model.batch_breakdown(module, 1 << 12);
  EXPECT_GT(breakdown.launch_time,
            breakdown.gather_time + breakdown.elementwise_time);
}

TEST(GpuModel, RejectsBadConfig) {
  GpuModelConfig config;
  config.batch_samples = 0;
  EXPECT_THROW(GpuExecutionModel{config}, std::logic_error);
}

}  // namespace
}  // namespace spnhbm::gpu
