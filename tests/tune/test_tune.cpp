// Autotuner tests: deterministic search trajectories, manifest round-trip
// and mismatch rejection, typed front-door config validation, HBM channel
// packing correctness, and the serve/fleet paths that apply a manifest
// per model lane.
#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "spnhbm/arith/cfp.hpp"
#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/fleet/router.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/model/tuning.hpp"
#include "spnhbm/runtime/inference_runtime.hpp"
#include "spnhbm/sim/process.hpp"
#include "spnhbm/sim/scheduler.hpp"
#include "spnhbm/tapasco/device.hpp"
#include "spnhbm/tune/cost_model.hpp"
#include "spnhbm/tune/tuner.hpp"
#include "spnhbm/tune/workload.hpp"
#include "spnhbm/util/error.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm {
namespace {

model::ModelHandle nips_artifact(std::size_t variables = 10,
                                 std::string name = "m") {
  auto nips = workload::make_nips_model(variables);
  return model::ModelArtifact::compile(
      std::move(name), "1", std::move(nips.spn),
      arith::make_cfp_backend(arith::paper_cfp_format()));
}

/// A manifest matching `artifact` with serving-layer knobs set.
model::TuningManifest matching_manifest(const model::ModelArtifact& artifact,
                                        std::size_t batch = 4,
                                        std::uint64_t flush_us = 700) {
  model::TuningManifest manifest;
  manifest.model_id = artifact.id();
  manifest.content_hash_hex = artifact.content_hash_hex();
  manifest.query = compiler::query_kind_name(artifact.module().query());
  manifest.seed = 9;
  manifest.config.block_samples = 1 << 14;
  manifest.config.pe_count = 2;
  manifest.config.hbm_pes_per_channel = 1;
  manifest.config.batch_samples = batch;
  manifest.config.flush_deadline_us = flush_us;
  manifest.tuned_samples_per_second = 100.0;
  manifest.baseline_samples_per_second = 50.0;
  manifest.candidates_evaluated = 3;
  return manifest;
}

tune::TuneOptions fast_options() {
  tune::TuneOptions options;
  options.workload.requests = 8;
  options.workload.mean_request_samples = 512;
  options.workload.mean_interarrival_us = 100;
  options.workload.seed = 21;
  options.max_evaluations = 10;
  return options;
}

// --- Workload traces ---------------------------------------------------------

TEST(TuneWorkload, TraceIsDeterministicAndSorted) {
  tune::WorkloadSpec spec;
  spec.requests = 64;
  spec.sparse_fraction = 0.3;
  const auto a = tune::make_trace(spec);
  const auto b = tune::make_trace(spec);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].samples, b[i].samples);
    EXPECT_EQ(a[i].sparse, b[i].sparse);
    EXPECT_GE(a[i].samples, 1u);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    }
  }
  spec.seed = 99;
  const auto c = tune::make_trace(spec);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_differs |= a[i].samples != c[i].samples;
  }
  EXPECT_TRUE(any_differs) << "different seeds must yield different traces";
}

TEST(TuneWorkload, ZeroInterarrivalMeansBurstAtTimeZero) {
  tune::WorkloadSpec spec;
  spec.requests = 5;
  spec.mean_interarrival_us = 0;
  for (const auto& request : tune::make_trace(spec)) {
    EXPECT_EQ(request.arrival_us, 0u);
  }
}

// --- Cost model --------------------------------------------------------------

TEST(TuneCostModel, InfeasibleCandidatesAreRejectedNotThrown) {
  const auto model = nips_artifact();
  tune::WorkloadSpec spec;
  spec.requests = 4;
  const auto trace = tune::make_trace(spec);
  model::TunedConfig config;
  config.block_samples = 1 << 14;
  config.pe_count = 16;  // beyond the routable maximum (8 on XUP-VVH)
  config.batch_samples = 1024;
  config.flush_deadline_us = 1000;
  const auto score = tune::score_candidate(model, config, spec, trace,
                                           fpga::Platform::kHbmXupVvh);
  EXPECT_FALSE(score.feasible);
  EXPECT_FALSE(score.rejection.empty());
}

TEST(TuneCostModel, SparseWorkloadScores) {
  const auto model = nips_artifact();
  tune::WorkloadSpec spec;
  spec.requests = 4;
  spec.mean_request_samples = 64;
  spec.sparse_fraction = 0.5;
  const auto trace = tune::make_trace(spec);
  model::TunedConfig config;
  config.block_samples = 1 << 14;
  config.pe_count = 2;
  config.batch_samples = 256;
  config.flush_deadline_us = 1000;
  const auto score = tune::score_candidate(model, config, spec, trace,
                                           fpga::Platform::kHbmXupVvh);
  EXPECT_TRUE(score.feasible) << score.rejection;
  EXPECT_GT(score.samples_per_second, 0.0);
}

// --- The search --------------------------------------------------------------

TEST(Tuner, SameSeedReproducesSearchLogByteForByte) {
  const auto model = nips_artifact();
  const auto options = fast_options();
  const auto a = tune::tune(model, options);
  const auto b = tune::tune(model, options);
  EXPECT_EQ(a.search_log, b.search_log);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated);
}

TEST(Tuner, TunedNeverLosesToBaseline) {
  const auto model = nips_artifact();
  const auto result = tune::tune(model, fast_options());
  EXPECT_TRUE(result.best_score.feasible);
  EXPECT_GE(result.best_score.samples_per_second,
            result.baseline_score.samples_per_second);
  EXPECT_LE(result.candidates_evaluated, 10u);
  EXPECT_NE(result.search_log.find("baseline"), std::string::npos);
  EXPECT_NE(result.search_log.find("best"), std::string::npos);
}

TEST(Tuner, RespectsPeBound) {
  const auto model = nips_artifact();
  auto options = fast_options();
  options.max_pe_count = 2;
  const auto result = tune::tune(model, options);
  EXPECT_LE(result.best.pe_count, 2);
  EXPECT_LE(result.baseline.pe_count, 2);
}

// --- Manifest round-trip and rejection ---------------------------------------

TEST(TuningManifest, JsonRoundTrip) {
  const auto model = nips_artifact();
  const auto manifest = matching_manifest(*model);
  const auto restored = model::TuningManifest::from_json(manifest.to_json());
  EXPECT_EQ(restored.model_id, manifest.model_id);
  EXPECT_EQ(restored.content_hash_hex, manifest.content_hash_hex);
  EXPECT_EQ(restored.query, manifest.query);
  EXPECT_EQ(restored.seed, manifest.seed);
  EXPECT_EQ(restored.config, manifest.config);
  EXPECT_DOUBLE_EQ(restored.tuned_samples_per_second,
                   manifest.tuned_samples_per_second);
  EXPECT_EQ(restored.candidates_evaluated, manifest.candidates_evaluated);
}

TEST(TuningManifest, SaveLoadFile) {
  const auto model = nips_artifact();
  const auto manifest = matching_manifest(*model);
  const std::string path = "tune_manifest_test.json";
  manifest.save(path);
  const auto loaded = model::TuningManifest::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.config, manifest.config);
  EXPECT_EQ(loaded.content_hash_hex, manifest.content_hash_hex);
}

TEST(TuningManifest, MalformedJsonIsRejected) {
  EXPECT_THROW(model::TuningManifest::from_json("{}"), model::TuningError);
  EXPECT_THROW(model::TuningManifest::from_json("not json"), Error);
}

TEST(TuningManifest, HashMismatchIsRejectedOnAttach) {
  const auto tuned_for = nips_artifact(10);
  const auto other = nips_artifact(20, "other");  // different compiled bits
  const auto manifest = std::make_shared<const model::TuningManifest>(
      matching_manifest(*tuned_for));
  EXPECT_THROW(other->attach_tuning(manifest), model::TuningError);
  EXPECT_EQ(other->tuning(), nullptr);
  // The artifact it was minted for accepts it.
  tuned_for->attach_tuning(manifest);
  ASSERT_NE(tuned_for->tuning(), nullptr);
  EXPECT_EQ(tuned_for->tuning()->config.batch_samples, 4u);
}

TEST(Tuner, ManifestCarriesModelIdentityAndScores) {
  const auto model = nips_artifact();
  const auto result = tune::tune(model, fast_options());
  const auto manifest = result.manifest(*model);
  EXPECT_EQ(manifest.content_hash_hex, model->content_hash_hex());
  EXPECT_EQ(manifest.query, "joint");
  EXPECT_EQ(manifest.config, result.best);
  EXPECT_EQ(manifest.candidates_evaluated, result.candidates_evaluated);
  // And it attaches cleanly to the model it was tuned for.
  model->attach_tuning(
      std::make_shared<const model::TuningManifest>(manifest));
  EXPECT_NE(model->tuning(), nullptr);
}

// --- Typed front-door validation ---------------------------------------------

TEST(TunedConfig, ValidateRejectsBadKnobs) {
  model::TunedConfig config;
  config.block_samples = 1 << 14;
  config.pe_count = 2;
  config.batch_samples = 256;
  config.flush_deadline_us = 1000;
  EXPECT_NO_THROW(config.validate());

  auto broken = config;
  broken.block_samples = 0;
  EXPECT_THROW(broken.validate(), ConfigError);

  broken = config;
  broken.pe_count = 0;
  EXPECT_THROW(broken.validate(), ConfigError);

  broken = config;
  broken.hbm_pes_per_channel = 0;
  EXPECT_THROW(broken.validate(), ConfigError);

  // The satellite edge: batch 0 with a nonzero flush deadline is a
  // contradiction (nothing ever batches, yet a deadline is armed).
  broken = config;
  broken.batch_samples = 0;
  broken.flush_deadline_us = 500;
  EXPECT_THROW(broken.validate(), ConfigError);
}

TEST(RuntimeConfig, ZeroBlockSamplesIsTypedError) {
  const auto model = nips_artifact();
  engine::FpgaEngineConfig config;
  config.pe_count = 1;
  config.block_samples = 0;  // engine treats 0 as "default"; force it low
  EXPECT_NO_THROW(engine::FpgaSimEngine(model, config));
  // The runtime front door itself rejects a zero block size.
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = 1;
  tapasco::Device device(runner, model->module(), model->backend(),
                         composition);
  runtime::RuntimeConfig rc;
  rc.block_samples = 0;
  EXPECT_THROW(
      runtime::InferenceRuntime(runner, device, model->module(), rc),
      ConfigError);
}

TEST(FpgaEngineConfig, NegativePeCountIsTypedError) {
  const auto model = nips_artifact();
  engine::FpgaEngineConfig config;
  config.pe_count = -3;
  EXPECT_THROW(engine::FpgaSimEngine(model, config), ConfigError);
}

TEST(CompositionConfig, BadPackingIsTypedError) {
  const auto model = nips_artifact();
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = 2;
  composition.hbm_pes_per_channel = 0;
  EXPECT_THROW(tapasco::Device(runner, model->module(), model->backend(),
                               composition),
               ConfigError);
}

// --- HBM channel packing -----------------------------------------------------

TEST(ChannelPacking, PackedEngineMatchesDedicatedResults) {
  const auto model = nips_artifact();
  engine::FpgaEngineConfig dedicated;
  dedicated.pe_count = 4;
  engine::FpgaEngineConfig packed = dedicated;
  packed.hbm_pes_per_channel = 2;  // 4 PEs on 2 channels
  engine::FpgaSimEngine a(model, dedicated);
  engine::FpgaSimEngine b(model, packed);

  std::vector<std::uint8_t> samples;
  for (std::size_t i = 0; i < 32 * model->input_features(); ++i) {
    samples.push_back(static_cast<std::uint8_t>(i % 7));
  }
  const auto dedicated_results = a.infer(samples);
  const auto packed_results = b.infer(samples);
  ASSERT_EQ(dedicated_results.size(), packed_results.size());
  for (std::size_t i = 0; i < dedicated_results.size(); ++i) {
    EXPECT_DOUBLE_EQ(dedicated_results[i], packed_results[i]) << "sample " << i;
  }
}

TEST(ChannelPacking, SharedChannelIsNeverFasterThanDedicated) {
  const auto model = nips_artifact();
  engine::FpgaEngineConfig dedicated;
  dedicated.pe_count = 4;
  dedicated.compute_results = false;
  engine::FpgaEngineConfig packed = dedicated;
  packed.hbm_pes_per_channel = 4;  // all four PEs share one channel
  engine::FpgaSimEngine a(model, dedicated);
  engine::FpgaSimEngine b(model, packed);
  const double dedicated_throughput = a.measure_throughput(1 << 16);
  const double packed_throughput = b.measure_throughput(1 << 16);
  EXPECT_LE(packed_throughput, dedicated_throughput * 1.0001);
}

// --- Serving applies the manifest per lane -----------------------------------

TEST(ServerTuning, LaneUsesManifestBatchAndFlush) {
  const auto model = nips_artifact();
  model->attach_tuning(std::make_shared<const model::TuningManifest>(
      matching_manifest(*model, /*batch=*/4, /*flush_us=*/700)));

  engine::ServerConfig config;
  config.batch_samples = 64;  // server-wide default the lane must override
  engine::InferenceServer server(config);
  server.register_engine(std::make_shared<engine::CpuEngine>(model));
  server.start();
  EXPECT_EQ(server.batch_samples(model->id()), 4u);

  std::vector<std::future<std::vector<double>>> futures;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> row(model->input_features(),
                                  static_cast<std::uint8_t>(i));
    futures.push_back(server.submit(model->id(), std::move(row)));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().size(), 1u);
  }
  server.stop();

  const auto stats = server.stats();
  const auto it = stats.per_model.find(model->id());
  ASSERT_NE(it, stats.per_model.end());
  EXPECT_EQ(it->second.batch_samples, 4u);
  EXPECT_EQ(stats.requests, 8u);
}

TEST(ServerTuning, UntunedLaneKeepsServerDefaults) {
  const auto model = nips_artifact();
  engine::ServerConfig config;
  config.batch_samples = 64;
  engine::InferenceServer server(config);
  server.register_engine(std::make_shared<engine::CpuEngine>(model));
  server.start();
  EXPECT_EQ(server.batch_samples(model->id()), 64u);
  server.stop();
}

// --- Fleet placement from the manifest ---------------------------------------

TEST(FleetTuning, DeploySizesPartitionFromManifest) {
  const auto model = nips_artifact();
  model->attach_tuning(std::make_shared<const model::TuningManifest>(
      matching_manifest(*model)));  // pe_count = 2

  fleet::FleetConfig config;
  config.devices = 1;
  fleet::FleetRouter router(config);
  const auto location = router.deploy(model);  // pe_slots = 0 -> manifest
  EXPECT_EQ(router.replica_count(model->id()), 1u);
  EXPECT_EQ(location.member, 0u);
}

TEST(FleetTuning, OversizedManifestFailsPlacementLoudly) {
  const auto model = nips_artifact(10, "big");
  auto manifest = matching_manifest(*model);
  manifest.config.pe_count = 64;  // no device fits this partition
  model->attach_tuning(
      std::make_shared<const model::TuningManifest>(manifest));

  fleet::FleetConfig config;
  config.devices = 1;
  fleet::FleetRouter router(config);
  EXPECT_THROW(router.deploy(model), PlacementError);
  EXPECT_EQ(router.replica_count(model->id()), 0u);
}

}  // namespace
}  // namespace spnhbm
