// InferenceServer tests: dynamic-batching coalescing, the latency-deadline
// flush, backpressure at the queue bound, result routing for requests split
// across batches/engines, dispatch policies and failure propagation.
//
// A deterministic MockEngine stands in for the real backends so batch
// boundaries and dispatch decisions are exactly checkable.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mock_engine.hpp"
#include "spnhbm/engine/server.hpp"

namespace spnhbm {
namespace {

using engine_test::MockEngine;
using engine_test::expect_encoded;
using engine_test::kFeatures;
using engine_test::make_request;

TEST(Server, CoalescesSmallRequestsIntoBlockSizedBatches) {
  // k requests of n samples queued before start must dispatch in exactly
  // ceil(k*n / B) batches — the dynamic-batching guarantee.
  auto mock = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.batch_samples = 8;
  config.max_latency = std::chrono::milliseconds(1000);  // flush via stop()
  engine::InferenceServer server(config);
  server.register_engine(mock);

  const std::size_t k = 10, n = 3;  // 30 samples -> ceil(30/8) = 4 batches
  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t r = 0; r < k; ++r) {
    requests.push_back(make_request(n, static_cast<std::uint8_t>(r * 16)));
    futures.push_back(server.submit(requests.back()));
  }
  server.start();
  server.stop();

  for (std::size_t r = 0; r < k; ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  const auto sizes = mock->batch_sizes();
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 8u);
  EXPECT_EQ(sizes[1], 8u);
  EXPECT_EQ(sizes[2], 8u);
  EXPECT_EQ(sizes[3], 6u);
  EXPECT_EQ(server.stats().batches, 4u);
  EXPECT_EQ(server.stats().samples, 30u);
  EXPECT_EQ(server.stats().requests, 10u);
}

TEST(Server, DeadlineFlushBoundsTailLatency) {
  // A partial batch far below the coalescing target must still be flushed
  // once the oldest request has waited max_latency — without stop().
  auto mock = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.batch_samples = 1024;
  config.max_latency = std::chrono::milliseconds(20);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  const auto request_a = make_request(3, 1);
  const auto request_b = make_request(3, 101);
  auto future_a = server.submit(request_a);
  auto future_b = server.submit(request_b);
  expect_encoded(request_a, future_a.get());
  expect_encoded(request_b, future_b.get());
  server.stop();

  EXPECT_GE(server.stats().deadline_flushes, 1u);
  EXPECT_LE(server.stats().batches, 2u);
}

TEST(Server, BackpressureBlocksAndTrySubmitRejectsAtTheBound) {
  MockEngine::Config mock_config;
  mock_config.gated = true;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.max_queue_samples = 8;
  config.max_latency = std::chrono::milliseconds(1);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  // Fill the bound exactly; the gated engine holds everything in flight.
  const auto big = make_request(8, 7);
  auto big_future = server.submit(big);
  // Wait until the whole request is dispatched or queued against the bound.
  while (server.outstanding_samples() < 8) {
    std::this_thread::yield();
  }

  EXPECT_FALSE(server.try_submit(make_request(1, 50)).has_value());
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.outstanding_samples(), 8u);

  // A blocking submit must park, not throw or drop.
  const auto extra = make_request(4, 90);
  auto parked = std::async(std::launch::async,
                           [&] { return server.submit(extra).get(); });
  EXPECT_EQ(parked.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);

  mock->release();
  expect_encoded(big, big_future.get());
  expect_encoded(extra, parked.get());
  server.stop();
  EXPECT_EQ(server.outstanding_samples(), 0u);
  EXPECT_EQ(server.stats().peak_outstanding_samples, 8u);
}

TEST(Server, RequestSplitAcrossEnginesResolvesWithOrderedResults) {
  // One 8-sample request over two round-robin engines with batch size 4:
  // each engine computes half, and the scatter must reassemble the results
  // in request order.
  auto mock_a = std::make_shared<MockEngine>();
  auto mock_b = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.policy = engine::DispatchPolicy::kRoundRobin;
  engine::InferenceServer server(config);
  server.register_engine(mock_a);
  server.register_engine(mock_b);

  const auto request = make_request(8, 23);
  auto future = server.submit(request);
  server.start();
  server.stop();

  expect_encoded(request, future.get());
  EXPECT_EQ(server.dispatched_samples(0), 4u);
  EXPECT_EQ(server.dispatched_samples(1), 4u);
}

TEST(Server, LeastLoadedProbesUnknownEnginesThenPrefersTheFastOne) {
  // Engine A claims 1e9 samples/s; engine B is unmeasured (nominal 0,
  // like a cold CPU engine). The policy probes B once while it is idle,
  // then routes everything else to A.
  MockEngine::Config fast_config;
  fast_config.nominal_throughput = 1e9;
  fast_config.busy_per_sample = 1e-9;
  MockEngine::Config cold_config;
  cold_config.nominal_throughput = 0.0;
  cold_config.busy_per_sample = 1.0;  // measures as 1 sample/s
  auto fast = std::make_shared<MockEngine>(fast_config);
  auto cold = std::make_shared<MockEngine>(cold_config);

  engine::ServerConfig config;
  config.batch_samples = 4;
  config.policy = engine::DispatchPolicy::kLeastLoaded;
  engine::InferenceServer server(config);
  server.register_engine(fast);
  server.register_engine(cold);

  std::vector<std::future<std::vector<double>>> futures;
  std::vector<std::vector<std::uint8_t>> requests;
  for (std::size_t r = 0; r < 5; ++r) {
    requests.push_back(make_request(4, static_cast<std::uint8_t>(r * 8)));
    futures.push_back(server.submit(requests.back()));
  }
  server.start();
  server.stop();
  for (std::size_t r = 0; r < 5; ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  EXPECT_EQ(server.dispatched_samples(1), 4u);   // exactly one probe batch
  EXPECT_EQ(server.dispatched_samples(0), 16u);  // everything else
}

TEST(Server, EngineFailurePropagatesToTheRequestFuture) {
  MockEngine::Config mock_config;
  mock_config.fail = true;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::InferenceServer server;
  server.register_engine(mock);

  auto future = server.submit(make_request(2, 3));
  server.start();
  server.stop();
  EXPECT_THROW(future.get(), Error);
}

TEST(Server, RegistrationValidatesEngines) {
  engine::InferenceServer server;
  MockEngine::Config timing_only;
  timing_only.functional = false;
  EXPECT_THROW(server.register_engine(std::make_shared<MockEngine>(timing_only)),
               std::logic_error);
  EXPECT_THROW(server.register_engine(nullptr), std::logic_error);
  server.register_engine(std::make_shared<MockEngine>());
}

TEST(Server, SubmitValidatesRequests) {
  engine::ServerConfig validate_config;
  validate_config.batch_samples = 4;
  validate_config.max_queue_samples = 16;
  engine::InferenceServer server(validate_config);
  server.register_engine(std::make_shared<MockEngine>());

  // Not a whole number of rows.
  EXPECT_THROW(server.submit(std::vector<std::uint8_t>(kFeatures + 1, 0)),
               std::logic_error);
  // A single request larger than the whole queue bound can never fit.
  EXPECT_THROW(server.submit(make_request(17, 0)), std::logic_error);

  server.start();
  server.stop();
  // Lifecycle misuse is a runtime API error, not a validation failure.
  EXPECT_THROW(server.submit(make_request(1, 0)), RuntimeApiError);
}

TEST(Server, StatsCarryLatencyAndQueueWaitDistributions) {
  auto mock = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.batch_samples = 8;
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  const std::size_t k = 6;
  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t r = 0; r < k; ++r) {
    requests.push_back(make_request(2, static_cast<std::uint8_t>(r)));
    futures.push_back(server.submit(requests.back()));
  }
  for (auto& f : futures) f.get();
  server.stop();

  const engine::ServerStats stats = server.stats();
  // One latency sample per completed request, one queue-wait sample per
  // request whose first slice dispatched, one fill sample per batch.
  EXPECT_EQ(stats.request_latency_us.count, k);
  EXPECT_EQ(stats.queue_wait_us.count, k);
  EXPECT_EQ(stats.batch_fill_samples.count, stats.batches);
  EXPECT_GT(stats.request_latency_us.max, 0.0);
  EXPECT_GE(stats.request_latency_us.p99(), stats.request_latency_us.p50());
  // Queue wait is a prefix of the end-to-end latency.
  EXPECT_LE(stats.queue_wait_us.p50(), stats.request_latency_us.max);
  EXPECT_DOUBLE_EQ(stats.batch_fill_samples.sum,
                   static_cast<double>(stats.samples));

  const std::string description = stats.describe();
  EXPECT_NE(description.find("latency us p50/p95/p99="), std::string::npos);
  EXPECT_NE(description.find("queue wait us p50/p99="), std::string::npos);
}

TEST(Server, EmptyStatsDescribeOmitsLatencySection) {
  engine::InferenceServer server;
  server.register_engine(std::make_shared<MockEngine>());
  const std::string description = server.stats().describe();
  EXPECT_EQ(description.find("latency us"), std::string::npos);
}

TEST(Server, DefaultBatchSizeIsTheSmallestEnginePreference) {
  MockEngine::Config small;
  small.preferred_batch_samples = 32;
  MockEngine::Config large;
  large.preferred_batch_samples = 64;
  engine::InferenceServer server;  // batch_samples = 0 -> derive
  server.register_engine(std::make_shared<MockEngine>(large));
  server.register_engine(std::make_shared<MockEngine>(small));
  EXPECT_EQ(server.batch_samples(), 32u);
}

TEST(Server, PerEngineAccessorsRejectOutOfRangeIndices) {
  // Regression: these used to index the worker vector unchecked; a bad
  // index must surface as a RuntimeApiError, not undefined behaviour.
  engine::InferenceServer server;
  EXPECT_THROW(server.engine(0), RuntimeApiError);  // no engines at all
  server.register_engine(std::make_shared<MockEngine>());
  EXPECT_NO_THROW(server.engine(0));
  EXPECT_NO_THROW(server.engine_health(0));
  EXPECT_NO_THROW(server.dispatched_samples(0));
  EXPECT_NO_THROW(server.engine_model(0));
  EXPECT_THROW(server.engine(1), RuntimeApiError);
  EXPECT_THROW(server.engine_health(1), RuntimeApiError);
  EXPECT_THROW(server.dispatched_samples(1), RuntimeApiError);
  EXPECT_THROW(server.engine_model(1), RuntimeApiError);
}

}  // namespace
}  // namespace spnhbm
