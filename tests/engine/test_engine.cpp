// Engine-layer tests: cross-backend result equivalence through the one
// InferenceEngine interface, throughput parity with the pre-engine direct
// runtime path, and the submit/wait contract.
#include <gtest/gtest.h>

#include <stdexcept>

#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/gpu_engine.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm {
namespace {

// In-distribution documents: uniform random bytes would push joint
// probabilities below the reduced formats' representable range.
std::vector<std::uint8_t> make_documents(std::size_t variables,
                                         std::size_t count,
                                         std::uint64_t seed) {
  workload::CorpusConfig corpus;
  corpus.vocabulary = variables;
  corpus.documents = count;
  corpus.seed = seed;
  return workload::make_bag_of_words(corpus).to_bytes();
}

TEST(CrossBackend, Float64ResultsAreBitIdentical) {
  // With a float64-compiled module every backend evaluates the same
  // operator program in IEEE double: CPU, FPGA simulation and the GPU
  // model must agree bit for bit.
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  const auto samples = make_documents(10, 96, 2024);

  engine::FpgaSimEngine fpga(module, *backend);
  engine::CpuEngine cpu(module, {.threads = 2});
  engine::GpuModelEngine gpu(module);

  const auto p_fpga = fpga.infer(samples);
  const auto p_cpu = cpu.infer(samples);
  const auto p_gpu = gpu.infer(samples);
  ASSERT_EQ(p_fpga.size(), 96u);
  ASSERT_EQ(p_cpu.size(), 96u);
  ASSERT_EQ(p_gpu.size(), 96u);
  for (std::size_t i = 0; i < p_fpga.size(); ++i) {
    EXPECT_DOUBLE_EQ(p_fpga[i], p_cpu[i]) << "sample " << i;
    EXPECT_DOUBLE_EQ(p_fpga[i], p_gpu[i]) << "sample " << i;
  }
}

TEST(CrossBackend, CfpAcceleratorMatchesCpuWithinFormatBound) {
  // The FPGA engine runs the paper's custom floating-point datapath; the
  // CPU engine evaluates in double. They must agree within the format's
  // documented relative bound (1e-3 above CFP's ~1e-33 flush-to-zero
  // region — same bound as the integration tests).
  const auto model = workload::make_nips_model(10);
  const auto cfp = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto f64 = arith::make_float64_backend();
  const auto module_cfp = compiler::compile_spn(model.spn, *cfp);
  const auto module_f64 = compiler::compile_spn(model.spn, *f64);
  const auto samples = make_documents(10, 123, 77);

  engine::FpgaSimEngine fpga(module_cfp, *cfp);
  engine::CpuEngine cpu(module_f64, {.threads = 2});
  const auto p_fpga = fpga.infer(samples);
  const auto p_cpu = cpu.infer(samples);

  int compared = 0;
  for (std::size_t i = 0; i < p_cpu.size(); ++i) {
    if (p_cpu[i] < 1e-33) continue;
    EXPECT_NEAR(p_fpga[i] / p_cpu[i], 1.0, 1e-3) << "sample " << i;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(CrossBackend, EnginesMatchReferenceEvaluator) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  const auto samples = make_documents(10, 32, 5);

  engine::CpuEngine cpu(module);
  const auto results = cpu.infer(samples);
  spn::Evaluator reference(model.spn);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double want = reference.evaluate_bytes(
        std::span<const std::uint8_t>(samples).subspan(i * 10, 10));
    EXPECT_DOUBLE_EQ(results[i], want) << "sample " << i;
  }
}

TEST(FpgaSimEngine, ThroughputMatchesDirectRuntimePath) {
  // measure_throughput must reproduce the pre-engine benchmark path
  // exactly: same composition, same runtime, same virtual-time result.
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model.spn, *backend);

  engine::FpgaEngineConfig config;
  config.pe_count = 2;
  config.compute_results = false;
  engine::FpgaSimEngine eng(module, *backend, config);
  const double via_engine = eng.measure_throughput(1'000'000);

  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = 2;
  composition.compute_results = false;
  tapasco::Device device(runner, module, *backend, composition);
  runtime::InferenceRuntime rt(runner, device, module);
  const double direct = rt.run(1'000'000).samples_per_second;

  EXPECT_DOUBLE_EQ(via_engine, direct);
}

TEST(FpgaSimEngine, TimingOnlyConfigurationRejectsFunctionalBatches) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model.spn, *backend);

  engine::FpgaEngineConfig config;
  config.compute_results = false;
  engine::FpgaSimEngine eng(module, *backend, config);
  EXPECT_FALSE(eng.capabilities().functional);

  std::vector<std::uint8_t> samples(10, 0);
  std::vector<double> results(1);
  EXPECT_THROW(eng.submit(samples, results), std::logic_error);
  EXPECT_GT(eng.measure_throughput(500'000), 0.0);
}

TEST(FpgaSimEngine, StatsAccumulateAcrossBatches) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  engine::FpgaSimEngine eng(module, *backend);

  const auto samples = make_documents(10, 20, 1);
  eng.infer(samples);
  eng.infer(samples);
  const auto stats = eng.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.samples, 40u);
  EXPECT_GT(stats.busy_seconds, 0.0);       // virtual device time
  EXPECT_GT(stats.samples_per_second(), 0.0);
}

TEST(Engine, SubmitValidatesSpans) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  engine::CpuEngine eng(module);

  std::vector<std::uint8_t> ragged(15, 0);  // not a whole number of rows
  std::vector<double> results(2);
  EXPECT_THROW(eng.submit(ragged, results), std::logic_error);

  std::vector<std::uint8_t> samples(20, 0);
  std::vector<double> short_results(1);  // 2 rows but room for 1 result
  EXPECT_THROW(eng.submit(samples, short_results), std::logic_error);
}

TEST(Engine, WaitRejectsUnknownAndReusedHandles) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  engine::FpgaSimEngine eng(module, *backend);

  const auto samples = make_documents(10, 4, 9);
  std::vector<double> results(4);
  const auto handle = eng.submit(samples, results);
  EXPECT_THROW(eng.wait(handle + 1), std::logic_error);  // never submitted
  eng.wait(handle);
  EXPECT_THROW(eng.wait(handle), std::logic_error);  // already completed
}

TEST(Engine, CapabilitiesDescribeTheBackends) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);

  engine::FpgaSimEngine fpga(module, *backend);
  engine::CpuEngine cpu(module, {.threads = 3});
  engine::GpuModelEngine gpu(module);

  EXPECT_EQ(fpga.capabilities().name, "fpga-sim/hbm x1");
  EXPECT_EQ(fpga.capabilities().input_features, 10u);
  EXPECT_GT(fpga.capabilities().nominal_throughput, 0.0);
  EXPECT_EQ(cpu.capabilities().name, "cpu-native x3");
  EXPECT_EQ(cpu.capabilities().nominal_throughput, 0.0);  // unknown until measured
  EXPECT_GT(gpu.capabilities().nominal_throughput, 0.0);
  EXPECT_TRUE(cpu.capabilities().functional);
  EXPECT_TRUE(gpu.capabilities().functional);
}

}  // namespace
}  // namespace spnhbm
