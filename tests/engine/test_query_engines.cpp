// Query-generic engine tests: marginal and MPE artifacts must produce
// bit-identical results to the reference queries on every backend (FPGA
// simulation, native CPU, GPU model), sparse evidence must equal its
// densified twin bit-for-bit while moving fewer modelled bytes, and the
// InferenceServer must address per-query lanes by suffix and validate
// sparse streams at the front door.
#include <gtest/gtest.h>

#include <algorithm>

#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/gpu_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/queries.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::engine {
namespace {

constexpr std::size_t kVars = 8;

spn::Spn query_spn(std::uint64_t seed) {
  spn::RandomSpnConfig config;
  config.variables = kVars;
  config.leaf_domain = compiler::kMissingByte;
  config.seed = seed;
  return spn::make_random_spn(config);
}

ModelHandle query_artifact(const spn::Spn& spn, compiler::QueryKind query,
                           const std::string& name = "q") {
  compiler::CompileOptions options;
  options.query = query;
  options.input_domain = compiler::kMissingByte;
  return model::ModelArtifact::compile(name, "1", spn,
                                       arith::make_float64_backend(), options);
}

/// Byte rows with random missingness (kMissingByte) plus the double twin
/// rows (NaN) the reference evaluator reads.
struct MissingBatch {
  std::vector<std::uint8_t> bytes;
  std::vector<std::vector<double>> doubles;
};

MissingBatch missing_batch(std::size_t count, std::uint64_t seed) {
  MissingBatch batch;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> row(kVars);
    for (std::size_t v = 0; v < kVars; ++v) {
      if (rng.next_below(3) == 0) {
        batch.bytes.push_back(compiler::kMissingByte);
        row[v] = spn::missing_value();
      } else {
        const auto byte =
            static_cast<std::uint8_t>(rng.next_below(compiler::kMissingByte));
        batch.bytes.push_back(byte);
        row[v] = static_cast<double>(byte);
      }
    }
    batch.doubles.push_back(std::move(row));
  }
  return batch;
}

TEST(QueryEngines, MarginalBitIdenticalAcrossBackendsAndReference) {
  const spn::Spn spn = query_spn(101);
  const auto artifact = query_artifact(spn, compiler::QueryKind::kMarginal);
  const MissingBatch batch = missing_batch(48, 101);

  FpgaSimEngine fpga(artifact);
  CpuEngine cpu(artifact, {.threads = 2});
  GpuModelEngine gpu(artifact);
  const auto p_fpga = fpga.infer(batch.bytes);
  const auto p_cpu = cpu.infer(batch.bytes);
  const auto p_gpu = gpu.infer(batch.bytes);

  spn::Evaluator reference(spn);
  ASSERT_EQ(p_fpga.size(), 48u);
  for (std::size_t i = 0; i < p_fpga.size(); ++i) {
    const double want = reference.evaluate(batch.doubles[i]);
    EXPECT_DOUBLE_EQ(p_fpga[i], want) << "sample " << i;
    EXPECT_DOUBLE_EQ(p_cpu[i], want) << "sample " << i;
    EXPECT_DOUBLE_EQ(p_gpu[i], want) << "sample " << i;
  }
}

TEST(QueryEngines, MpeBitIdenticalAcrossBackendsAndReference) {
  const spn::Spn spn = query_spn(102);
  const auto artifact = query_artifact(spn, compiler::QueryKind::kMpe);
  const MissingBatch batch = missing_batch(48, 102);

  FpgaSimEngine fpga(artifact);
  CpuEngine cpu(artifact, {.threads = 2});
  GpuModelEngine gpu(artifact);
  const auto p_fpga = fpga.infer(batch.bytes);
  const auto p_cpu = cpu.infer(batch.bytes);
  const auto p_gpu = gpu.infer(batch.bytes);

  for (std::size_t i = 0; i < p_fpga.size(); ++i) {
    const double want = spn::max_product_value(spn, batch.doubles[i],
                                               compiler::kMissingByte);
    EXPECT_DOUBLE_EQ(p_fpga[i], want) << "sample " << i;
    EXPECT_DOUBLE_EQ(p_cpu[i], want) << "sample " << i;
    EXPECT_DOUBLE_EQ(p_gpu[i], want) << "sample " << i;
  }
}

TEST(QueryEngines, SparseEqualsDenseOnEveryBackend) {
  const spn::Spn spn = query_spn(103);
  const auto artifact = query_artifact(spn, compiler::QueryKind::kMarginal);
  const MissingBatch batch = missing_batch(32, 103);
  const auto& defaults = artifact->module().default_evidence();
  const compiler::SparseBatch sparse =
      compiler::sparse_from_dense(batch.bytes, kVars, defaults);
  const auto stream = compiler::encode_sparse(sparse);
  EXPECT_LT(stream.size(), batch.bytes.size() * 3);  // sanity: it encodes

  FpgaSimEngine fpga(artifact);
  CpuEngine cpu(artifact);
  GpuModelEngine gpu(artifact);
  const auto dense = cpu.infer(batch.bytes);
  const auto s_cpu = cpu.infer_sparse(stream, 32);
  const auto s_fpga = fpga.infer_sparse(stream, 32);
  const auto s_gpu = gpu.infer_sparse(stream, 32);
  ASSERT_EQ(s_cpu.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(s_cpu[i], dense[i]) << "sample " << i;
    EXPECT_DOUBLE_EQ(s_fpga[i], dense[i]) << "sample " << i;
    EXPECT_DOUBLE_EQ(s_gpu[i], dense[i]) << "sample " << i;
  }
}

TEST(QueryEngines, SparseMovesFewerModelledBytesThanDense) {
  // One active variable per sample: 5 stream bytes vs kVars dense bytes.
  // The FPGA simulation charges PCIe DMA and HBM bursts for exactly the
  // bytes moved, so the sparse run must finish in strictly less virtual
  // time on an otherwise identical card.
  const spn::Spn spn = query_spn(104);
  const auto artifact = query_artifact(spn, compiler::QueryKind::kMarginal);
  constexpr std::size_t kCount = 256;

  compiler::SparseBatch sparse;
  sparse.features = kVars;
  std::vector<std::uint8_t> dense;
  Rng rng(104);
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto index = static_cast<std::uint16_t>(rng.next_below(kVars));
    const auto value =
        static_cast<std::uint8_t>(rng.next_below(compiler::kMissingByte));
    const std::uint16_t indices[] = {index};
    const std::uint8_t values[] = {value};
    sparse.add_sample(indices, values);
    std::vector<std::uint8_t> row(kVars, compiler::kMissingByte);
    row[index] = value;
    dense.insert(dense.end(), row.begin(), row.end());
  }
  const auto stream = compiler::encode_sparse(sparse);
  ASSERT_LT(stream.size(), dense.size());

  FpgaSimEngine dense_engine(artifact);
  FpgaSimEngine sparse_engine(artifact);
  const auto p_dense = dense_engine.infer(dense);
  const auto p_sparse = sparse_engine.infer_sparse(stream, kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_DOUBLE_EQ(p_sparse[i], p_dense[i]) << "sample " << i;
  }
  EXPECT_LT(sparse_engine.virtual_now(), dense_engine.virtual_now());
}

TEST(QueryEngines, ServerAddressesQueryLanesBySuffix) {
  const spn::Spn spn = query_spn(105);
  const auto joint = query_artifact(spn, compiler::QueryKind::kJoint, "m");
  const auto marginal =
      query_artifact(spn, compiler::QueryKind::kMarginal, "m");

  ServerConfig config;
  config.batch_samples = 8;
  config.max_latency = std::chrono::microseconds(200);
  InferenceServer server(config);
  server.register_engine(std::make_shared<CpuEngine>(joint));
  server.register_engine(std::make_shared<CpuEngine>(marginal));
  server.start();

  const auto models = server.served_models();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_NE(std::find(models.begin(), models.end(), "m@1"), models.end());
  EXPECT_NE(std::find(models.begin(), models.end(), "m@1#marginal"),
            models.end());
  EXPECT_EQ(server.input_features("m@1#marginal"), kVars);
  EXPECT_EQ(server.input_features("m#marginal"), kVars);  // bare + suffix

  const MissingBatch batch = missing_batch(4, 105);
  spn::Evaluator reference(spn);
  auto result = server.submit("m#marginal", batch.bytes).get();
  ASSERT_EQ(result.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(result[i], reference.evaluate(batch.doubles[i]));
  }
  server.stop();
}

TEST(QueryEngines, ServerValidatesSparseStreamsAtTheFrontDoor) {
  const spn::Spn spn = query_spn(106);
  const auto marginal =
      query_artifact(spn, compiler::QueryKind::kMarginal, "m");
  ServerConfig config;
  config.batch_samples = 8;
  config.max_latency = std::chrono::microseconds(200);
  InferenceServer server(config);
  const std::size_t engine_index =
      server.register_engine(std::make_shared<CpuEngine>(marginal));
  server.start();

  // A valid stream round-trips through try_submit_sparse.
  const MissingBatch batch = missing_batch(3, 106);
  const auto& defaults = marginal->module().default_evidence();
  const auto stream = compiler::encode_sparse(
      compiler::sparse_from_dense(batch.bytes, kVars, defaults));
  auto future = server.try_submit_sparse("m#marginal", stream, 3);
  ASSERT_TRUE(future.has_value());
  const auto results = future->get();
  spn::Evaluator reference(spn);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(results[i], reference.evaluate(batch.doubles[i]));
  }

  // A truncated stream throws ParseError at the submit call — it never
  // reaches the engine, so the health machinery records no failure.
  std::vector<std::uint8_t> truncated(stream.begin(), stream.end() - 1);
  EXPECT_THROW(server.try_submit_sparse("m#marginal", truncated, 3),
               ParseError);
  EXPECT_EQ(server.engine_health(engine_index), EngineHealth::kHealthy);
  server.stop();
}

}  // namespace
}  // namespace spnhbm::engine
