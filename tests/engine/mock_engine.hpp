// Deterministic mock backend shared by the InferenceServer test suites
// (batching, recovery, backpressure). Results are a checksum of the input
// row, so a result landing in the wrong slot is always detected; failures
// are scripted per submit call, so retry / failover / quarantine timelines
// are exactly reproducible.
#pragma once

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/engine/engine.hpp"
#include "spnhbm/spn/random_spn.hpp"

namespace spnhbm::engine_test {

constexpr std::size_t kFeatures = 4;

/// One shared artifact for every MockEngine instance: the server routes
/// batches by model id, so all mocks serving "mock@1" share a lane — which
/// is exactly what the single-model test suites assume.
inline engine::ModelHandle mock_artifact() {
  static const engine::ModelHandle artifact = [] {
    spn::RandomSpnConfig config;
    config.variables = kFeatures;
    config.seed = 7;
    return model::ModelArtifact::compile("mock", "1",
                                         spn::make_random_spn(config),
                                         arith::make_float64_backend());
  }();
  return artifact;
}

/// Deterministic per-sample "probability": a checksum of the input row.
inline double encode(std::span<const std::uint8_t> row) {
  double value = 1.0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    value += static_cast<double>(row[j]) * static_cast<double>(j + 1);
  }
  return value;
}

class MockEngine : public engine::InferenceEngine {
 public:
  struct Config {
    bool functional = true;
    double nominal_throughput = 0.0;
    /// Virtual seconds charged per sample (0 = never "measured").
    double busy_per_sample = 0.0;
    /// Every submit throws.
    bool fail = false;
    /// The first N submit calls throw; later ones succeed. Scripts
    /// transient failures for the retry / circuit-breaker tests.
    int fail_first_n = 0;
    /// Throw whenever the batch's first sample byte equals this value
    /// (-1 = never). Content-addressed poison: deterministic regardless of
    /// how batches interleave with retries.
    int poison_first_byte = -1;
    /// submit blocks until release() — for backpressure tests.
    bool gated = false;
    std::size_t preferred_batch_samples = 64;
    std::string name = "mock";
  };

  MockEngine() : MockEngine(Config()) {}
  explicit MockEngine(Config config) : config_(config) {
    capabilities_.name = config.name;
    capabilities_.input_features = kFeatures;
    capabilities_.functional = config.functional;
    capabilities_.nominal_throughput = config.nominal_throughput;
    capabilities_.preferred_batch_samples = config.preferred_batch_samples;
  }

  const engine::EngineCapabilities& capabilities() const override {
    return capabilities_;
  }

  const engine::ModelHandle& loaded_model() const override { return model_; }

  void activate(engine::ModelHandle next) override {
    SPNHBM_REQUIRE(next != nullptr, "activate requires a model");
    model_ = std::move(next);
    capabilities_.input_features = model_->input_features();
    stats_.reconfigurations += 1;
  }

  engine::BatchHandle submit(std::span<const std::uint8_t> samples,
                             std::span<double> results) override {
    const std::size_t count = check_batch(samples, results);
    const std::size_t call = ++submit_calls_;
    if (config_.gated) {
      std::unique_lock<std::mutex> lock(gate_mutex_);
      gate_cv_.wait(lock, [&] { return released_; });
    }
    if (config_.fail ||
        call <= static_cast<std::size_t>(config_.fail_first_n) ||
        (config_.poison_first_byte >= 0 && !samples.empty() &&
         samples[0] == static_cast<std::uint8_t>(config_.poison_first_byte))) {
      throw Error("mock backend failure");
    }
    for (std::size_t i = 0; i < count; ++i) {
      results[i] = encode(samples.subspan(i * kFeatures, kFeatures));
    }
    batch_sizes_.push_back(count);
    stats_.batches += 1;
    stats_.samples += count;
    stats_.busy_seconds += static_cast<double>(count) * config_.busy_per_sample;
    return next_handle_++;
  }

  void wait(engine::BatchHandle handle) override {
    SPNHBM_REQUIRE(handle > last_completed_ && handle < next_handle_,
                   "wait on unknown batch handle");
    last_completed_ = handle;
  }

  double measure_throughput(std::uint64_t) override {
    return capabilities_.nominal_throughput;
  }

  engine::EngineStats stats() const override { return stats_; }

  void release() {
    std::lock_guard<std::mutex> lock(gate_mutex_);
    released_ = true;
    gate_cv_.notify_all();
  }

  /// Only read after InferenceServer::stop() (the join orders the access).
  const std::vector<std::size_t>& batch_sizes() const { return batch_sizes_; }
  std::size_t submit_calls() const { return submit_calls_; }

 private:
  Config config_;
  engine::ModelHandle model_ = mock_artifact();
  engine::EngineCapabilities capabilities_;
  engine::EngineStats stats_;
  std::vector<std::size_t> batch_sizes_;
  std::size_t submit_calls_ = 0;
  engine::BatchHandle next_handle_ = 1;
  engine::BatchHandle last_completed_ = 0;
  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  bool released_ = false;
};

inline std::vector<std::uint8_t> make_request(std::size_t count,
                                              std::uint8_t tag) {
  std::vector<std::uint8_t> samples(count * kFeatures);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<std::uint8_t>(tag + i);
  }
  return samples;
}

inline void expect_encoded(const std::vector<std::uint8_t>& request,
                           const std::vector<double>& results) {
  ASSERT_EQ(results.size(), request.size() / kFeatures);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i],
                     encode(std::span<const std::uint8_t>(request).subspan(
                         i * kFeatures, kFeatures)))
        << "sample " << i;
  }
}

}  // namespace spnhbm::engine_test
