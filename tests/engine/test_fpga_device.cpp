// Spatial multi-tenancy on one simulated card: a FpgaSimDevice co-hosts
// several models in disjoint partitions, adds/evicts tenants by partial
// reconfiguration of only the affected partition, and reports structured
// per-resource deficits when a tenant does not fit.
#include "spnhbm/engine/fpga_device.hpp"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "spnhbm/fpga/calibration.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm {
namespace {

model::ModelHandle nips_artifact(std::size_t variables,
                                 std::string version = "1") {
  auto model = workload::make_nips_model(variables);
  return model::ModelArtifact::compile(model.name, std::move(version),
                                       std::move(model.spn),
                                       arith::make_float64_backend());
}

std::vector<std::uint8_t> random_rows(Rng& rng, std::size_t rows,
                                      std::size_t features) {
  std::vector<std::uint8_t> samples(rows * features);
  for (auto& byte : samples) {
    byte = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return samples;
}

/// Virtual seconds to stream the whole HBM-platform bitstream.
double full_program_seconds() {
  return fpga::cal::kBitstreamBytesHbm / fpga::cal::kIcapBytesPerSecond;
}

// ---------------------------------------------------------------------------
// The acceptance headline: one VU37P co-hosts four NIPS80 models in
// disjoint partitions, and every tenant's results are byte-identical to
// the classic single-tenant engine serving the same model alone.

TEST(FpgaSimDevice, CoHostsFourNips80TenantsByteIdenticalToSingleTenant) {
  engine::FpgaSimDevice device;
  std::vector<model::ModelHandle> models;
  for (int i = 0; i < 4; ++i) {
    models.push_back(nips_artifact(80, std::to_string(i + 1)));
    device.add_tenant("p" + std::to_string(i), models.back(), 1);
  }
  EXPECT_EQ(device.tenant_count(), 4u);
  EXPECT_EQ(device.free_pe_slots(), fpga::cal::kMaxRoutablePes - 4);
  EXPECT_EQ(device.free_channels(), 32 - 4);

  Rng rng(11);
  for (int i = 0; i < 4; ++i) {
    auto& tenant = device.tenant("p" + std::to_string(i));
    EXPECT_EQ(tenant.loaded_model()->id(), models[i]->id());
    const auto samples = random_rows(rng, 6, 80);

    // The single-tenant path: one whole-device engine, same model, same
    // PE count. Results must match bit for bit.
    engine::FpgaEngineConfig single;
    single.pe_count = 1;
    engine::FpgaSimEngine reference(models[i], single);
    const auto got = tenant.infer(samples);
    const auto want = reference.infer(samples);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(got[s], want[s]) << "tenant " << i << " sample " << s;
    }
  }

  // Partition identity is visible in the tenant's capabilities.
  EXPECT_NE(device.tenant("p0").capabilities().name.find("fpga0/p0"),
            std::string::npos);
  EXPECT_EQ(device.tenant_partitions(),
            (std::vector<std::string>{"p0", "p1", "p2", "p3"}));
}

// ---------------------------------------------------------------------------
// Partial reconfiguration: adding a tenant charges only its partition's
// bitstream share, not the whole device's.

TEST(FpgaSimDevice, AddTenantChargesPartialBitstreamOnly) {
  engine::FpgaSimDevice device;
  auto& tenant = device.add_tenant("one", nips_artifact(20), 1);

  const auto stats = tenant.stats();
  EXPECT_EQ(stats.reconfigurations, 1u);
  // 1 of 8 PE slots: the ICAP charge is 1/8 of the full bitstream plus
  // table staging — far below a whole-device reprogram.
  EXPECT_GT(stats.reconfiguration_seconds,
            full_program_seconds() / fpga::cal::kMaxRoutablePes);
  EXPECT_LT(stats.reconfiguration_seconds, full_program_seconds());
  // The charge is on the tenant's virtual timeline, not just a counter.
  EXPECT_GT(tenant.virtual_now(), 0);
  EXPECT_DOUBLE_EQ(device.stats().reconfiguration_seconds,
                   stats.reconfiguration_seconds);
}

TEST(FpgaSimDevice, OtherTenantsServeThroughAddAndEvict) {
  engine::FpgaSimDevice device;
  const auto nips10 = nips_artifact(10);
  const auto nips20 = nips_artifact(20);
  const auto nips40 = nips_artifact(40);
  auto& a = device.add_tenant("a", nips10, 2);
  device.add_tenant("b", nips20, 1);

  Rng rng(3);
  const auto samples = random_rows(rng, 5, 10);
  const auto before = a.infer(samples);

  // Adding and evicting other tenants must not touch partition "a":
  // same engine, same virtual device state, identical results.
  device.add_tenant("c", nips40, 2);
  const auto during = a.infer(samples);
  device.evict_tenant("b");
  const auto after = a.infer(samples);
  for (std::size_t s = 0; s < before.size(); ++s) {
    EXPECT_EQ(before[s], during[s]);
    EXPECT_EQ(before[s], after[s]);
  }
  // "a" was never reconfigured again — only its initial program shows.
  EXPECT_EQ(a.stats().reconfigurations, 1u);

  EXPECT_FALSE(device.has_tenant("b"));
  EXPECT_TRUE(device.has_tenant("a"));
  const auto stats = device.stats();
  EXPECT_EQ(stats.tenants_added, 3u);
  EXPECT_EQ(stats.tenants_evicted, 1u);
  // Evicting "b" freed its PE slot and channel for the next tenant.
  device.add_tenant("d", nips20, 1);
  EXPECT_EQ(device.tenant_count(), 3u);
}

TEST(FpgaSimDevice, EvictionChargesTheBlankingBitstream) {
  engine::FpgaSimDevice device;
  device.add_tenant("t", nips_artifact(10), 2);
  const double after_add = device.stats().reconfiguration_seconds;
  device.evict_tenant("t");
  // Blanking streams the partition's share of the bitstream (2 of 8
  // slots), without the table staging the add charged on top.
  const double blanking =
      device.stats().reconfiguration_seconds - after_add;
  EXPECT_DOUBLE_EQ(blanking, full_program_seconds() * 2.0 /
                                 fpga::cal::kMaxRoutablePes);
}

// ---------------------------------------------------------------------------
// Admission failures are structured and leave the device untouched.

TEST(FpgaSimDevice, OversubscribedDeviceReportsPeSlotDeficit) {
  engine::FpgaSimDevice device;
  const auto model = nips_artifact(10);
  for (int i = 0; i < 4; ++i) {
    device.add_tenant("p" + std::to_string(i), model, 2);
  }
  EXPECT_EQ(device.free_pe_slots(), 0);
  try {
    device.add_tenant("over", model, 1);
    FAIL() << "expected PlacementDeficitError";
  } catch (const fpga::PlacementDeficitError& e) {
    ASSERT_FALSE(e.deficits().empty());
    EXPECT_EQ(e.deficits().front().resource, "PE slots");
    EXPECT_DOUBLE_EQ(e.deficits().front().deficit(), 1.0);
  }
  // The failed add must not leak a partition or an engine.
  EXPECT_EQ(device.tenant_count(), 4u);
  EXPECT_FALSE(device.has_tenant("over"));
  EXPECT_EQ(device.stats().tenants_added, 4u);
}

TEST(FpgaSimDevice, UnknownPartitionAndDuplicateNamesThrow) {
  engine::FpgaSimDevice device;
  device.add_tenant("p0", nips_artifact(10), 1);
  EXPECT_THROW(device.tenant("nope"), PlacementError);
  EXPECT_THROW(device.evict_tenant("nope"), PlacementError);
  EXPECT_THROW(device.add_tenant("p0", nips_artifact(20), 1),
               PlacementError);
  EXPECT_EQ(device.tenant_count(), 1u);
  EXPECT_NE(device.describe().find("p0"), std::string::npos);
}

}  // namespace
}  // namespace spnhbm
