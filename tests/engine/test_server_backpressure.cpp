// Backpressure under concurrency (robustness satellite): N submitter
// threads hammer a server whose queue bound is far smaller than the
// offered load, mixing try_submit (counting rejections) with blocking
// submit. Every accepted request must resolve exactly once with the
// correct per-row checksums — no lost, duplicated or cross-wired results
// — and the server's rejected counter must equal the rejections the
// submitters observed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "mock_engine.hpp"
#include "spnhbm/engine/server.hpp"

namespace spnhbm {
namespace {

using engine_test::MockEngine;
using engine_test::expect_encoded;
using engine_test::make_request;

TEST(ServerBackpressure, ConcurrentSubmittersLoseNothingAtTheBound) {
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kRequestsPerThread = 40;

  auto mock = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.max_queue_samples = 16;  // far below the offered load
  config.max_latency = std::chrono::microseconds(200);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  std::atomic<std::uint64_t> rejections{0};
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t r = 0; r < kRequestsPerThread; ++r) {
        // A unique tag per (thread, request) makes every row distinct, so
        // a result scattered into the wrong request is always detected.
        const auto tag =
            static_cast<std::uint8_t>(t * kRequestsPerThread + r);
        const std::size_t count = 1 + (t + r) % 3;
        const auto request = make_request(count, tag);
        std::future<std::vector<double>> future;
        if (r % 2 == 0) {
          // Non-blocking path: count rejections, then fall back to the
          // blocking submit so every request is eventually accepted.
          auto attempt = server.try_submit(request);
          while (!attempt.has_value()) {
            rejections.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
            attempt = server.try_submit(request);
          }
          future = std::move(*attempt);
        } else {
          future = server.submit(request);
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
        expect_encoded(request, future.get());
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  server.stop();

  const engine::ServerStats stats = server.stats();
  EXPECT_EQ(accepted.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.requests, kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.rejected, rejections.load());
  // Conservation: every accepted sample was dispatched and completed.
  std::uint64_t expected_samples = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t r = 0; r < kRequestsPerThread; ++r) {
      expected_samples += 1 + (t + r) % 3;
    }
  }
  EXPECT_EQ(stats.samples, expected_samples);
  EXPECT_EQ(mock->stats().samples, expected_samples);
  EXPECT_EQ(server.outstanding_samples(), 0u);
  // The bound actually bit: outstanding work never exceeded it.
  EXPECT_LE(stats.peak_outstanding_samples, config.max_queue_samples);
}

TEST(ServerBackpressure, BlockedSubmittersDrainOnStop) {
  // Submitters parked in submit() while the queue is full must either be
  // admitted during the drain or see the stop as RuntimeApiError — never
  // deadlock. A gated engine keeps the queue full until stop is underway.
  MockEngine::Config mock_config;
  mock_config.gated = true;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.max_queue_samples = 4;
  config.max_latency = std::chrono::microseconds(200);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  auto first = server.submit(make_request(4, 1));
  std::atomic<int> outcomes{0};
  std::vector<std::thread> parked;
  for (int t = 0; t < 3; ++t) {
    parked.emplace_back([&, t] {
      try {
        auto future =
            server.submit(make_request(4, static_cast<std::uint8_t>(40 + t)));
        future.get();
      } catch (const RuntimeApiError&) {
      } catch (const Error&) {
      }
      outcomes.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mock->release();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.stop();
  for (auto& thread : parked) thread.join();
  EXPECT_EQ(outcomes.load(), 3);
  first.get();
  EXPECT_EQ(server.outstanding_samples(), 0u);
}

}  // namespace
}  // namespace spnhbm
