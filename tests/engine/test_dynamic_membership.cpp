// Dynamic engine membership: engines join a *running* InferenceServer
// (register_engine spawns the worker on the spot) and leave it again
// (retire_engine drains, joins and hands the engine back) — the server
// half of spatial multi-tenancy, where a fleet adds and evicts device
// tenants while everything keeps serving.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "mock_engine.hpp"
#include "spnhbm/engine/fpga_device.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm {
namespace {

using engine_test::expect_encoded;
using engine_test::kFeatures;
using engine_test::make_request;
using engine_test::MockEngine;

model::ModelHandle random_artifact(std::string name, std::size_t variables,
                                   std::uint64_t seed) {
  spn::RandomSpnConfig config;
  config.variables = variables;
  config.seed = seed;
  return model::ModelArtifact::compile(std::move(name), "1",
                                       spn::make_random_spn(config),
                                       arith::make_float64_backend());
}

engine::ServerConfig quick_config() {
  engine::ServerConfig config;
  config.batch_samples = 8;
  config.max_latency = std::chrono::microseconds(200);
  return config;
}

TEST(DynamicMembership, RegisterEngineWhileRunningOpensItsModelLane) {
  engine::InferenceServer server(quick_config());
  server.register_engine(std::make_shared<MockEngine>(), 0, "dev0/p0");
  server.start();

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  requests.push_back(make_request(3, 10));
  futures.push_back(server.submit("mock", requests.back()));

  // A second model joins mid-flight; its lane must serve immediately.
  auto other = std::make_shared<MockEngine>();
  other->activate(random_artifact("other", kFeatures, 99));
  const std::size_t index = server.register_engine(other, 0, "dev0/p1");
  EXPECT_EQ(index, 1u);
  EXPECT_EQ(server.engine_device(1), "dev0/p1");
  EXPECT_EQ(server.served_models(),
            (std::vector<std::string>{"mock@1", "other@1"}));

  for (std::size_t r = 0; r < 6; ++r) {
    requests.push_back(make_request(2, static_cast<std::uint8_t>(40 + 8 * r)));
    futures.push_back(
        server.submit(r % 2 == 0 ? "other" : "mock", requests.back()));
  }
  for (std::size_t r = 0; r < requests.size(); ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  server.stop();
  EXPECT_EQ(server.stats().failed_requests, 0u);
}

TEST(DynamicMembership, RetireEngineDrainsAndHandsTheEngineBack) {
  engine::InferenceServer server(quick_config());
  auto first = std::make_shared<MockEngine>();
  auto second = std::make_shared<MockEngine>();
  server.register_engine(first, 0, "dev0/p0");
  server.register_engine(second, 0, "dev0/p1");
  server.start();

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t r = 0; r < 10; ++r) {
    requests.push_back(make_request(2, static_cast<std::uint8_t>(r * 16)));
    futures.push_back(server.submit("mock", requests.back()));
  }

  auto retired = server.retire_engine(0);
  EXPECT_EQ(retired.get(), first.get());
  EXPECT_TRUE(server.engine_retired(0));
  EXPECT_FALSE(server.engine_retired(1));
  EXPECT_EQ(server.engine_count(), 2u);  // indices stay stable
  EXPECT_THROW(server.engine(0), RuntimeApiError);

  // The survivor keeps the lane alive; nothing was dropped.
  for (std::size_t r = 0; r < 5; ++r) {
    requests.push_back(make_request(2, static_cast<std::uint8_t>(100 + r * 8)));
    futures.push_back(server.submit("mock", requests.back()));
  }
  for (std::size_t r = 0; r < requests.size(); ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.requests, 15u);
  // Every sample the fleet accepted was served by one of the two engines.
  EXPECT_EQ(first->stats().samples + second->stats().samples, 30u);
}

TEST(DynamicMembership, RetiringTheLastEngineOfAModelClosesItsLane) {
  engine::InferenceServer server(quick_config());
  auto mock = std::make_shared<MockEngine>();
  auto other = std::make_shared<MockEngine>();
  other->activate(random_artifact("other", kFeatures, 99));
  server.register_engine(mock);
  const std::size_t other_index = server.register_engine(other);
  server.start();

  server.retire_engine(other_index);
  // The lane is gone: new submits fail fast, the surviving model serves.
  EXPECT_THROW(server.submit("other", make_request(1, 0)), RuntimeApiError);
  auto request = make_request(2, 50);
  auto future = server.submit("mock", request);
  expect_encoded(request, future.get());
  server.stop();
}

TEST(DynamicMembership, RetireValidatesItsArguments) {
  engine::InferenceServer server(quick_config());
  server.register_engine(std::make_shared<MockEngine>());
  server.register_engine(std::make_shared<MockEngine>());
  server.start();
  EXPECT_THROW(server.retire_engine(9), RuntimeApiError);
  server.retire_engine(1);
  EXPECT_THROW(server.retire_engine(1), RuntimeApiError);  // already retired
  EXPECT_THROW(server.engine_device(9), RuntimeApiError);
  server.stop();
}

// ---------------------------------------------------------------------------
// The full multi-tenant serving path: one simulated device, several
// partitions, one server worker per tenant — contention is per-partition.

TEST(DynamicMembership, ServerDrivesCoResidentTenantsOfOneDevice) {
  auto nips10 = model::ModelArtifact::compile(
      "NIPS10", "1", workload::make_nips_model(10).spn,
      arith::make_float64_backend());
  auto nips20 = model::ModelArtifact::compile(
      "NIPS20", "1", workload::make_nips_model(20).spn,
      arith::make_float64_backend());

  engine::FpgaSimDevice device;
  device.add_tenant("p0", nips10, 1);
  device.add_tenant("p1", nips20, 1);

  engine::InferenceServer server(quick_config());
  server.register_engine(device.tenant_engine("p0"), 0, "fpga0/p0");
  server.register_engine(device.tenant_engine("p1"), 0, "fpga0/p1");
  server.start();

  Rng rng(17);
  auto rows = [&](std::size_t count, std::size_t features) {
    std::vector<std::uint8_t> samples(count * features);
    for (auto& byte : samples) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    return samples;
  };
  std::vector<std::future<std::vector<double>>> futures;
  std::vector<std::pair<model::ModelHandle, std::vector<std::uint8_t>>> sent;
  for (std::size_t r = 0; r < 12; ++r) {
    const auto& artifact = r % 2 == 0 ? nips10 : nips20;
    auto samples = rows(2, artifact->input_features());
    futures.push_back(server.submit(artifact->id(), samples));
    sent.emplace_back(artifact, std::move(samples));
  }
  for (std::size_t r = 0; r < sent.size(); ++r) {
    const auto& [artifact, samples] = sent[r];
    const auto results = futures[r].get();
    const std::size_t features = artifact->input_features();
    ASSERT_EQ(results.size(), samples.size() / features);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const double want = artifact->module().evaluate(
          artifact->backend(),
          std::span<const std::uint8_t>(samples).subspan(i * features,
                                                         features));
      EXPECT_DOUBLE_EQ(results[i], want);
    }
  }

  // Retire tenant p1's engine, then evict the tenant: p0 serves on.
  server.retire_engine(1);
  device.evict_tenant("p1");
  auto samples = rows(3, 10);
  auto future = server.submit("NIPS10", samples);
  EXPECT_EQ(future.get().size(), 3u);
  server.stop();
  EXPECT_EQ(server.stats().failed_requests, 0u);
  EXPECT_EQ(device.tenant_count(), 1u);
}

}  // namespace
}  // namespace spnhbm
