// Self-healing InferenceServer tests: per-batch retry with backoff,
// failover to a different engine, per-slice error isolation (a permanent
// failure only poisons the requests that were in the failed batch), the
// healthy -> degraded -> quarantined state machine with circuit-breaker
// probes and readmission, fail-fast NoHealthyEngineError, per-request
// deadlines, and the RuntimeApiError lifecycle contract.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "mock_engine.hpp"
#include "spnhbm/engine/server.hpp"

namespace spnhbm {
namespace {

using engine_test::MockEngine;
using engine_test::expect_encoded;
using engine_test::make_request;

TEST(ServerRecovery, TransientFailureIsRetriedOnTheSameEngine) {
  // Single engine whose first submit fails: the batch must be retried and
  // the request must resolve normally — the client never sees the fault.
  MockEngine::Config mock_config;
  mock_config.fail_first_n = 1;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.retry.max_attempts = 3;
  config.retry.backoff_base = std::chrono::microseconds(50);
  engine::InferenceServer server(config);
  server.register_engine(mock);

  const auto request = make_request(4, 11);
  auto future = server.submit(request);
  server.start();
  server.stop();

  expect_encoded(request, future.get());
  EXPECT_EQ(mock->submit_calls(), 2u);
  const engine::ServerStats stats = server.stats();
  EXPECT_EQ(stats.batch_retries, 1u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.failed_requests, 0u);
  // The success after the retry resets the state machine.
  EXPECT_EQ(server.engine_health(0), engine::EngineHealth::kHealthy);
}

TEST(ServerRecovery, RetryFailsOverToADifferentEngine) {
  // Engine A always fails, engine B always works: every batch that lands
  // on A must be retried on B, and every request must still resolve.
  MockEngine::Config broken_config;
  broken_config.fail = true;
  broken_config.name = "broken";
  auto broken = std::make_shared<MockEngine>(broken_config);
  auto good = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.policy = engine::DispatchPolicy::kRoundRobin;
  config.retry.max_attempts = 3;
  config.retry.backoff_base = std::chrono::microseconds(50);
  engine::InferenceServer server(config);
  server.register_engine(broken);
  server.register_engine(good);

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t r = 0; r < 4; ++r) {
    requests.push_back(make_request(4, static_cast<std::uint8_t>(r * 32)));
    futures.push_back(server.submit(requests.back()));
  }
  server.start();
  server.stop();

  for (std::size_t r = 0; r < 4; ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  const engine::ServerStats stats = server.stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.failovers, stats.batch_retries);
  EXPECT_EQ(stats.failed_requests, 0u);
  // Every sample was ultimately computed by the good engine.
  EXPECT_EQ(good->stats().samples, 16u);
}

TEST(ServerRecovery, PermanentFailureOnlyPoisonsTheFailedBatchesRequests) {
  // Regression for per-slice error tracking: the engine rejects exactly
  // the batch whose first sample byte matches the poison tag, so that
  // batch burns the whole retry budget and fails permanently while the
  // other batch succeeds — and only the poisoned batch's request rethrows.
  MockEngine::Config mock_config;
  mock_config.poison_first_byte = 1;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.retry.max_attempts = 3;
  config.retry.backoff_base = std::chrono::microseconds(50);
  // Keep the engine in rotation while its first batch burns the budget.
  config.health.quarantine_after = 10;
  engine::InferenceServer server(config);
  server.register_engine(mock);

  const auto doomed = make_request(4, 1);
  const auto healthy = make_request(4, 101);
  auto doomed_future = server.submit(doomed);
  auto healthy_future = server.submit(healthy);
  server.start();
  server.stop();

  EXPECT_THROW(doomed_future.get(), Error);
  expect_encoded(healthy, healthy_future.get());
  const engine::ServerStats stats = server.stats();
  EXPECT_EQ(stats.batch_retries, 2u);
  EXPECT_EQ(stats.failed_requests, 1u);
}

TEST(ServerRecovery, QuarantineFailsFastThenProbeReadmits) {
  // The engine fails its first two submits (exactly the retry budget and
  // the quarantine threshold), then recovers. The timeline under test:
  // permanent failure -> quarantine -> fail-fast while no probe is due ->
  // probe after the interval -> success -> readmission.
  MockEngine::Config mock_config;
  mock_config.fail_first_n = 2;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.retry.max_attempts = 2;
  config.retry.backoff_base = std::chrono::microseconds(50);
  config.health.degraded_after = 1;
  config.health.quarantine_after = 2;
  config.health.probe_interval = std::chrono::milliseconds(50);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  auto doomed = server.submit(make_request(2, 9));
  EXPECT_THROW(doomed.get(), Error);
  EXPECT_EQ(server.engine_health(0), engine::EngineHealth::kQuarantined);

  // The only engine is quarantined and its probe is not due for ~50 ms:
  // new work must be rejected fail-fast instead of queueing forever.
  EXPECT_THROW(server.submit(make_request(1, 20)),
               engine::NoHealthyEngineError);
  EXPECT_THROW(server.try_submit(make_request(1, 21)),
               engine::NoHealthyEngineError);

  // Once the probe is due, a submitted request rides the probe batch; the
  // engine has recovered, so the probe succeeds and readmits it.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const auto request = make_request(2, 40);
  auto future = server.submit(request);
  expect_encoded(request, future.get());
  server.stop();

  EXPECT_EQ(server.engine_health(0), engine::EngineHealth::kHealthy);
  const engine::ServerStats stats = server.stats();
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_GE(stats.probes, 1u);
  EXPECT_EQ(stats.readmissions, 1u);
  EXPECT_EQ(stats.failed_requests, 1u);
}

TEST(ServerRecovery, QuarantinedTierFailsOverToLowerPriorityEngine) {
  // Priority tiers: the broken tier-0 engine burns its retry budget and is
  // quarantined; traffic degrades onto the healthy tier-1 fallback instead
  // of failing, including the failover retry of the first batch.
  MockEngine::Config broken_config;
  broken_config.fail = true;
  broken_config.name = "primary";
  auto broken = std::make_shared<MockEngine>(broken_config);
  MockEngine::Config fallback_config;
  fallback_config.name = "fallback";
  auto fallback = std::make_shared<MockEngine>(fallback_config);
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.retry.max_attempts = 3;
  config.retry.backoff_base = std::chrono::microseconds(50);
  config.health.quarantine_after = 1;
  engine::InferenceServer server(config);
  server.register_engine(broken, /*priority=*/0);
  server.register_engine(fallback, /*priority=*/1);
  server.start();

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t r = 0; r < 3; ++r) {
    requests.push_back(make_request(4, static_cast<std::uint8_t>(r * 64)));
    futures.push_back(server.submit(requests.back()));
  }
  for (std::size_t r = 0; r < 3; ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  server.stop();

  EXPECT_EQ(server.engine_health(0), engine::EngineHealth::kQuarantined);
  EXPECT_EQ(server.engine_health(1), engine::EngineHealth::kHealthy);
  EXPECT_EQ(fallback->stats().samples, 12u);
  EXPECT_GE(server.stats().failovers, 1u);
  EXPECT_EQ(server.stats().failed_requests, 0u);
}

TEST(ServerRecovery, DeadlineExpiryResolvesFuturesWithDeadlineError) {
  // A gated engine holds the first batch in flight; the per-request
  // deadline must settle both the dispatched and the still-queued request
  // with DeadlineExceededError, then the late results are discarded.
  MockEngine::Config mock_config;
  mock_config.gated = true;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.max_latency = std::chrono::milliseconds(1);
  config.request_timeout = std::chrono::milliseconds(30);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  auto stuck = server.submit(make_request(4, 5));
  auto queued = server.submit(make_request(4, 55));
  EXPECT_THROW(stuck.get(), engine::DeadlineExceededError);
  EXPECT_THROW(queued.get(), engine::DeadlineExceededError);

  mock->release();
  server.stop();
  EXPECT_EQ(server.stats().deadline_expirations, 2u);
  EXPECT_EQ(server.outstanding_samples(), 0u);
}

TEST(ServerRecovery, GenerousDeadlineDoesNotExpireServedRequests) {
  auto mock = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.max_latency = std::chrono::milliseconds(1);
  config.request_timeout = std::chrono::seconds(5);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  const auto request = make_request(3, 77);
  auto future = server.submit(request);
  expect_encoded(request, future.get());
  server.stop();
  EXPECT_EQ(server.stats().deadline_expirations, 0u);
}

TEST(ServerRecovery, LifecycleMisuseThrowsRuntimeApiError) {
  // submit() before any engine is registered and after stop() are runtime
  // API misuse, distinct from request-validation logic errors.
  engine::InferenceServer server;
  EXPECT_THROW(server.submit(make_request(1, 0)), RuntimeApiError);
  EXPECT_THROW(server.try_submit(make_request(1, 0)), RuntimeApiError);

  server.register_engine(std::make_shared<MockEngine>());
  server.start();
  server.stop();
  EXPECT_THROW(server.submit(make_request(1, 0)), RuntimeApiError);
  EXPECT_THROW(server.try_submit(make_request(1, 0)), RuntimeApiError);
}

TEST(ServerRecovery, HealthNamesAreStable) {
  EXPECT_EQ(engine::to_string(engine::EngineHealth::kHealthy), "healthy");
  EXPECT_EQ(engine::to_string(engine::EngineHealth::kDegraded), "degraded");
  EXPECT_EQ(engine::to_string(engine::EngineHealth::kQuarantined),
            "quarantined");
}

TEST(ServerRecovery, RecoveryStatsAppearInDescribe) {
  MockEngine::Config mock_config;
  mock_config.fail_first_n = 1;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.retry.backoff_base = std::chrono::microseconds(50);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  auto future = server.submit(make_request(2, 1));
  server.start();
  server.stop();
  future.get();
  const std::string description = server.stats().describe();
  EXPECT_NE(description.find("recovery:"), std::string::npos);
  EXPECT_NE(description.find("1 retries"), std::string::npos);
}

}  // namespace
}  // namespace spnhbm
