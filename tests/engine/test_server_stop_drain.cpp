// stop()/drain ordering under load (robustness satellite): stopping a
// busy server must (a) let in-flight batches run to completion, (b) drain
// queued requests to a terminal state — a value, or a *typed* error when
// a deadline expired on the way — and (c) leak no future: after stop()
// returns, every future ever handed out is ready, and late submits fail
// with RuntimeApiError instead of queueing work nobody will serve.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "mock_engine.hpp"
#include "spnhbm/engine/server.hpp"

namespace spnhbm {
namespace {

using engine_test::MockEngine;
using engine_test::expect_encoded;
using engine_test::make_request;

TEST(ServerStopDrain, InFlightBatchCompletesAndQueuedRequestsDrain) {
  MockEngine::Config mock_config;
  mock_config.gated = true;  // the first dispatched batch parks in submit
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.max_latency = std::chrono::microseconds(100);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  constexpr std::size_t kRequests = 12;
  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    requests.push_back(make_request(1, static_cast<std::uint8_t>(i * 8)));
    futures.push_back(server.submit(requests.back()));
  }

  // Begin the stop while the engine is wedged: the drain must wait for
  // the in-flight batch and then serve everything still queued.
  std::thread stopper([&] { server.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mock->release();
  stopper.join();

  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "future " << i << " leaked by stop()";
    expect_encoded(requests[i], futures[i].get());
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.deadline_expirations, 0u);
}

TEST(ServerStopDrain, ExpiredQueuedRequestsFailTypedDuringDrain) {
  MockEngine::Config mock_config;
  mock_config.gated = true;
  auto mock = std::make_shared<MockEngine>(mock_config);
  engine::ServerConfig config;
  config.batch_samples = 2;
  config.max_latency = std::chrono::microseconds(100);
  config.request_timeout = std::chrono::microseconds(20'000);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  constexpr std::size_t kRequests = 8;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(
        server.submit(make_request(1, static_cast<std::uint8_t>(i * 16))));
  }
  // Let every deadline lapse while the engine is wedged, then unwedge and
  // stop: expired requests must drain as DeadlineExceededError — a typed,
  // catchable outcome — not hang, and not surface as a broken promise.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  mock->release();
  server.stop();

  std::size_t expired = 0;
  std::size_t served = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    try {
      future.get();
      served += 1;
    } catch (const engine::DeadlineExceededError&) {
      expired += 1;
    }
  }
  EXPECT_EQ(expired + served, kRequests);
  EXPECT_GE(expired, 1u);  // the queued tail was past its deadline
  const auto stats = server.stats();
  EXPECT_EQ(stats.deadline_expirations, expired);
}

TEST(ServerStopDrain, SubmitAfterStopFailsWithTypedError) {
  engine::InferenceServer server;
  server.register_engine(std::make_shared<MockEngine>());
  server.start();
  server.stop();
  EXPECT_THROW(server.submit(make_request(1, 1)), RuntimeApiError);
  EXPECT_THROW(server.try_submit(make_request(1, 2)), RuntimeApiError);
}

TEST(ServerStopDrain, StopUnderConcurrentSubmittersLeaksNothing) {
  constexpr std::size_t kThreads = 4;
  auto mock = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.max_queue_samples = 16;
  config.max_latency = std::chrono::microseconds(100);
  engine::InferenceServer server(config);
  server.register_engine(mock);
  server.start();

  // Each submitter keeps every accepted (request, future) pair and stops
  // at the first RuntimeApiError — the typed signal that the server shut
  // down underneath it.
  struct SubmitterLog {
    std::vector<std::vector<std::uint8_t>> requests;
    std::vector<std::future<std::vector<double>>> futures;
    bool saw_shutdown_error = false;
  };
  std::vector<SubmitterLog> logs(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t r = 0;; ++r) {
        auto request = make_request(
            1, static_cast<std::uint8_t>(t * 64 + r % 64));
        try {
          auto future = server.submit(request);
          logs[t].requests.push_back(std::move(request));
          logs[t].futures.push_back(std::move(future));
        } catch (const RuntimeApiError&) {
          logs[t].saw_shutdown_error = true;
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.stop();
  for (auto& submitter : submitters) submitter.join();

  std::size_t accepted = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(logs[t].saw_shutdown_error) << "thread " << t;
    for (std::size_t i = 0; i < logs[t].futures.size(); ++i) {
      ASSERT_EQ(logs[t].futures[i].wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "thread " << t << " future " << i << " leaked";
      expect_encoded(logs[t].requests[i], logs[t].futures[i].get());
    }
    accepted += logs[t].futures.size();
  }
  // Conservation: the server saw exactly the accepted requests (blocking
  // submit only — no rejects in this test) and failed none of them.
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, accepted);
  EXPECT_EQ(stats.failed_requests, 0u);
}

}  // namespace
}  // namespace spnhbm
