// Multi-model serving tests: one InferenceServer hosting several models
// with distinct input widths, model-routed dispatch (batches never mix
// models), per-model stats, and engine hot-swap — cheap on the CPU/mock
// backends, mechanistic (simulated reconfiguration time + placement
// re-check) on the FPGA simulation, and fault-injectable through the
// chaos decorator.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mock_engine.hpp"
#include "spnhbm/engine/chaos_engine.hpp"
#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/fault/fault.hpp"
#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm {
namespace {

using engine_test::expect_encoded;
using engine_test::kFeatures;
using engine_test::make_request;
using engine_test::MockEngine;

model::ModelHandle nips_artifact(std::size_t variables,
                                 std::string version = "1") {
  auto model = workload::make_nips_model(variables);
  return model::ModelArtifact::compile(model.name, std::move(version),
                                       std::move(model.spn),
                                       arith::make_float64_backend());
}

model::ModelHandle random_artifact(std::string name, std::size_t variables,
                                   std::uint64_t seed) {
  spn::RandomSpnConfig config;
  config.variables = variables;
  config.seed = seed;
  return model::ModelArtifact::compile(std::move(name), "1",
                                       spn::make_random_spn(config),
                                       arith::make_float64_backend());
}

std::vector<std::uint8_t> random_rows(Rng& rng, std::size_t rows,
                                      std::size_t features) {
  std::vector<std::uint8_t> samples(rows * features);
  for (auto& byte : samples) {
    byte = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return samples;
}

void expect_reference(const model::ModelArtifact& artifact,
                      std::span<const std::uint8_t> samples,
                      const std::vector<double>& results) {
  const std::size_t features = artifact.input_features();
  ASSERT_EQ(results.size(), samples.size() / features);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double want = artifact.module().evaluate(
        artifact.backend(), samples.subspan(i * features, features));
    EXPECT_DOUBLE_EQ(results[i], want) << "sample " << i;
  }
}

// ---------------------------------------------------------------------------
// Concurrent multi-model serving, verified against the reference evaluator.

TEST(MultiModelServer, ServesThreeModelsWithDistinctWidthsConcurrently) {
  const auto nips10 = nips_artifact(10);
  const auto nips20 = nips_artifact(20);
  const auto rand8 = random_artifact("rand8", 8, 42);
  const std::vector<model::ModelHandle> artifacts = {nips10, nips20, rand8};

  engine::ServerConfig config;
  config.batch_samples = 8;
  config.max_latency = std::chrono::microseconds(200);
  engine::InferenceServer server(config);
  for (const auto& artifact : artifacts) {
    server.register_engine(std::make_shared<engine::CpuEngine>(artifact));
  }
  EXPECT_EQ(server.served_models(),
            (std::vector<std::string>{"NIPS10@1", "NIPS20@1", "rand8@1"}));
  EXPECT_EQ(server.input_features("NIPS10@1"), 10u);
  EXPECT_EQ(server.input_features("rand8"), 8u);  // bare name
  EXPECT_THROW(server.input_features(), RuntimeApiError);  // >1 model
  EXPECT_THROW(server.input_features("nope"), RuntimeApiError);
  server.start();

  // Interleaved traffic: request r goes to model r%3 with 1..4 rows.
  Rng rng(2022);
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  std::vector<std::uint64_t> rows_per_model(artifacts.size(), 0);
  for (std::size_t r = 0; r < 45; ++r) {
    const std::size_t m = r % artifacts.size();
    const std::size_t rows = 1 + rng.next_below(4);
    auto samples = random_rows(rng, rows, artifacts[m]->input_features());
    futures.push_back(server.submit(artifacts[m]->id(), samples));
    requests.emplace_back(m, std::move(samples));
    rows_per_model[m] += rows;
  }
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto& [m, samples] = requests[r];
    expect_reference(*artifacts[m], samples, futures[r].get());
  }
  server.stop();

  const auto stats = server.stats();
  ASSERT_EQ(stats.per_model.size(), artifacts.size());
  for (std::size_t m = 0; m < artifacts.size(); ++m) {
    const auto& per = stats.per_model.at(artifacts[m]->id());
    EXPECT_EQ(per.requests, 15u);
    EXPECT_EQ(per.samples, rows_per_model[m]);
    EXPECT_GT(per.batches, 0u);
    EXPECT_EQ(per.failed_requests, 0u);
  }
  EXPECT_EQ(stats.requests, 45u);
}

TEST(MultiModelServer, ModelResolutionHandlesBareAmbiguousAndUnknown) {
  const auto v1 = nips_artifact(10, "1");
  const auto v2 = nips_artifact(10, "2");
  engine::InferenceServer server;
  server.register_engine(std::make_shared<engine::CpuEngine>(v1));
  server.register_engine(std::make_shared<engine::CpuEngine>(v2));
  server.start();

  Rng rng(7);
  auto row = random_rows(rng, 1, 10);
  // Exact ids always resolve; the bare name is ambiguous across versions;
  // the single-model overload refuses to guess between two models.
  auto ok = server.submit("NIPS10@2", row);
  expect_reference(*v2, row, ok.get());
  EXPECT_THROW(server.submit(row), RuntimeApiError);
  EXPECT_THROW(server.submit("missing@1", row), RuntimeApiError);
  // The ambiguity error must list the candidate ids, so a remote caller
  // seeing only the message can immediately retry with an exact id.
  try {
    server.submit("NIPS10", row);
    FAIL() << "expected RuntimeApiError for the ambiguous bare name";
  } catch (const RuntimeApiError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ambiguous"), std::string::npos) << what;
    EXPECT_NE(what.find("NIPS10@1"), std::string::npos) << what;
    EXPECT_NE(what.find("NIPS10@2"), std::string::npos) << what;
  }
  server.stop();
}

TEST(MultiModelServer, BatchesNeverMixModels) {
  // Two mock fleets serving different 4-feature models: every batch an
  // engine observes must contain only its own model's samples. The mock's
  // checksum results prove the per-slot routing; the dispatch counters
  // prove no batch crossed lanes.
  auto for_mock = std::make_shared<MockEngine>();
  auto for_other = std::make_shared<MockEngine>();
  for_other->activate(random_artifact("other", kFeatures, 99));

  engine::ServerConfig config;
  config.batch_samples = 8;
  config.max_latency = std::chrono::milliseconds(1000);  // flush via stop()
  engine::InferenceServer server(config);
  server.register_engine(for_mock);
  server.register_engine(for_other);

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  std::uint64_t mock_rows = 0, other_rows = 0;
  for (std::size_t r = 0; r < 24; ++r) {
    const bool to_mock = (r % 2) == 0;
    const std::size_t rows = 1 + r % 3;
    requests.push_back(make_request(rows, static_cast<std::uint8_t>(r * 8)));
    futures.push_back(
        server.submit(to_mock ? "mock" : "other", requests.back()));
    (to_mock ? mock_rows : other_rows) += rows;
  }
  server.start();
  server.stop();

  for (std::size_t r = 0; r < requests.size(); ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  // Each engine saw exactly its model's samples — nothing leaked across.
  EXPECT_EQ(for_mock->stats().samples, mock_rows);
  EXPECT_EQ(for_other->stats().samples, other_rows);
  EXPECT_EQ(server.dispatched_samples(0), mock_rows);
  EXPECT_EQ(server.dispatched_samples(1), other_rows);
  EXPECT_EQ(server.engine_model(0), "mock@1");
  EXPECT_EQ(server.engine_model(1), "other@1");
  const auto stats = server.stats();
  EXPECT_EQ(stats.per_model.at("mock@1").samples, mock_rows);
  EXPECT_EQ(stats.per_model.at("other@1").samples, other_rows);
}

// ---------------------------------------------------------------------------
// FPGA hot-swap: mechanistic reconfiguration on the simulated card.

TEST(FpgaHotSwap, ChargesSimulatedReconfigurationTimeAndServesNewModel) {
  const auto nips10 = nips_artifact(10);
  const auto nips20 = nips_artifact(20);
  engine::FpgaSimEngine engine(nips10);
  EXPECT_EQ(engine.loaded_model()->id(), "NIPS10@1");
  EXPECT_EQ(engine.capabilities().input_features, 10u);

  Rng rng(5);
  const auto before = random_rows(rng, 4, 10);
  std::vector<double> results(4);
  engine.wait(engine.submit(before, results));
  expect_reference(*nips10, before, results);

  const auto virtual_before = engine.virtual_now();
  engine.activate(nips20);

  // The swap is charged in simulated time: bitstream over the ICAP plus
  // staging the new model's tables through the DMA path.
  const auto stats = engine.stats();
  EXPECT_EQ(stats.reconfigurations, 1u);
  EXPECT_GT(stats.reconfiguration_seconds, 0.0);
  EXPECT_GT(engine.virtual_now(), virtual_before);
  EXPECT_EQ(engine.loaded_model()->id(), "NIPS20@1");
  EXPECT_EQ(engine.capabilities().input_features, 20u);

  const auto after = random_rows(rng, 4, 20);
  engine.wait(engine.submit(after, results));
  expect_reference(*nips20, after, results);
}

TEST(FpgaHotSwap, PlacementFailureKeepsThePreviousModelServing) {
  const auto small = nips_artifact(10);
  const auto big = nips_artifact(80);

  // Pick a PE count the small design places at but the big one cannot.
  const auto platform = fpga::Platform::kHbmXupVvh;
  const int max_big = fpga::max_placeable_pes(
      big->module(), big->backend().kind(), platform);
  const int max_small = fpga::max_placeable_pes(
      small->module(), small->backend().kind(), platform);
  ASSERT_GT(max_small, max_big) << "test premise: NIPS80 is the larger design";

  engine::FpgaEngineConfig config;
  config.pe_count = max_big + 1;
  engine::FpgaSimEngine engine(small, config);
  EXPECT_THROW(engine.activate(big), PlacementError);

  // The failed swap must leave the old model fully operational.
  EXPECT_EQ(engine.loaded_model()->id(), "NIPS10@1");
  EXPECT_EQ(engine.capabilities().input_features, 10u);
  EXPECT_EQ(engine.stats().reconfigurations, 0u);
  Rng rng(6);
  const auto samples = random_rows(rng, 3, 10);
  std::vector<double> results(3);
  engine.wait(engine.submit(samples, results));
  expect_reference(*small, samples, results);
}

// ---------------------------------------------------------------------------
// Server-driven hot-swap, including a deterministic activation fault.

TEST(MultiModelServer, ActivateHotSwapsOneEngineWhileTheFleetServes) {
  const auto other = random_artifact("other", kFeatures, 99);
  auto first = std::make_shared<MockEngine>();
  auto second = std::make_shared<MockEngine>();
  engine::ServerConfig config;
  config.batch_samples = 4;
  config.max_latency = std::chrono::microseconds(200);
  engine::InferenceServer server(config);
  server.register_engine(first);
  server.register_engine(second);
  server.start();

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t r = 0; r < 8; ++r) {
    requests.push_back(make_request(2, static_cast<std::uint8_t>(r * 16)));
    futures.push_back(server.submit("mock", requests.back()));
  }

  server.activate(0, other).get();
  EXPECT_EQ(server.engine_model(0), "other@1");
  EXPECT_EQ(server.engine_model(1), "mock@1");
  EXPECT_EQ(server.served_models(),
            (std::vector<std::string>{"mock@1", "other@1"}));
  EXPECT_EQ(first->stats().reconfigurations, 1u);

  // Both lanes keep serving after the swap: "mock" on the remaining
  // engine, "other" on the freshly activated one.
  for (std::size_t r = 0; r < 8; ++r) {
    requests.push_back(make_request(2, static_cast<std::uint8_t>(r * 8 + 4)));
    futures.push_back(
        server.submit(r % 2 == 0 ? "other" : "mock", requests.back()));
  }
  for (std::size_t r = 0; r < requests.size(); ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  server.stop();
  EXPECT_EQ(server.stats().activations, 1u);
  EXPECT_EQ(server.stats().failed_activations, 0u);
}

TEST(MultiModelServer, ActivateValidatesItsArguments) {
  auto mock = std::make_shared<MockEngine>();
  const auto other = random_artifact("other", kFeatures, 99);
  engine::InferenceServer server;
  server.register_engine(mock);
  EXPECT_THROW(server.activate(0, other), RuntimeApiError);  // not running
  server.start();
  EXPECT_THROW(server.activate(7, other), RuntimeApiError);  // bad index
  EXPECT_THROW(server.activate(0, nullptr), RuntimeApiError);
  server.stop();
}

TEST(MultiModelServer, ChaosActivationFailureIsContainedAndRetryable) {
  // Deterministic fault: the first engine.activate on the chaos-wrapped
  // engine fails; in-flight and later batches must be untouched, the old
  // model keeps serving, and a second activate succeeds.
  fault::FaultPlan plan;
  plan.seed = 99;
  fault::FaultRule rule;
  rule.site = "engine.activate";
  rule.kind = fault::FaultKind::kFail;
  rule.from = 0;
  rule.until = 1;
  rule.has_window = true;
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(std::move(plan));

  const auto other = random_artifact("other", kFeatures, 99);
  auto chaos = std::make_shared<engine::ChaosEngine>(
      std::make_unique<MockEngine>());
  auto steady = std::make_shared<MockEngine>();

  engine::ServerConfig config;
  config.batch_samples = 4;
  config.max_latency = std::chrono::microseconds(200);
  config.health.quarantine_after = 100;  // failures stay visible, not fatal
  engine::InferenceServer server(config);
  server.register_engine(chaos);
  server.register_engine(steady);
  server.start();

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  auto pump = [&](std::size_t count, std::uint8_t tint) {
    for (std::size_t r = 0; r < count; ++r) {
      requests.push_back(
          make_request(2, static_cast<std::uint8_t>(tint + r * 4)));
      futures.push_back(server.submit("mock", requests.back()));
    }
  };

  pump(6, 0);  // traffic in flight across the failed swap
  auto failed = server.activate(0, other);
  EXPECT_THROW(failed.get(), Error);
  EXPECT_EQ(server.engine_model(0), "mock@1");  // old model kept
  pump(6, 100);

  server.activate(0, other).get();  // op index 1: outside the fault window
  EXPECT_EQ(server.engine_model(0), "other@1");
  requests.push_back(make_request(3, 200));
  futures.push_back(server.submit("other", requests.back()));

  for (std::size_t r = 0; r < requests.size(); ++r) {
    expect_encoded(requests[r], futures[r].get());
  }
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.activations, 1u);
  EXPECT_EQ(stats.failed_activations, 1u);
  EXPECT_EQ(stats.failed_requests, 0u);  // no request was harmed
  EXPECT_EQ(stats.per_model.at("mock@1").samples, 24u);
  EXPECT_EQ(stats.per_model.at("other@1").samples, 3u);
}

}  // namespace
}  // namespace spnhbm
