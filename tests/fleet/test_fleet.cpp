// The sharded fleet router: replicas placed across N simulated devices,
// round-robin routing with failover on a full member queue, conservation
// identities end to end, and the telemetry-driven rebalancer scaling hot
// models up and cold models down.
#include "spnhbm/fleet/router.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm {
namespace {

model::ModelHandle nips_artifact(std::size_t variables,
                                 std::string version = "1") {
  auto model = workload::make_nips_model(variables);
  return model::ModelArtifact::compile(model.name, std::move(version),
                                       std::move(model.spn),
                                       arith::make_float64_backend());
}

std::vector<std::uint8_t> random_rows(Rng& rng, std::size_t rows,
                                      std::size_t features) {
  std::vector<std::uint8_t> samples(rows * features);
  for (auto& byte : samples) {
    byte = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return samples;
}

fleet::FleetConfig quick_fleet(std::size_t devices) {
  fleet::FleetConfig config;
  config.devices = devices;
  config.server.batch_samples = 8;
  config.server.max_latency = std::chrono::microseconds(200);
  return config;
}

void expect_reference(const model::ModelHandle& artifact,
                      const std::vector<std::uint8_t>& samples,
                      const std::vector<double>& results) {
  const std::size_t features = artifact->input_features();
  ASSERT_EQ(results.size(), samples.size() / features);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double want = artifact->module().evaluate(
        artifact->backend(),
        std::span<const std::uint8_t>(samples).subspan(i * features,
                                                       features));
    EXPECT_DOUBLE_EQ(results[i], want) << "sample " << i;
  }
}

TEST(FleetRouter, RoutesMixedTrafficAcrossDevicesAndConserves) {
  auto nips10 = nips_artifact(10);
  auto nips20 = nips_artifact(20);
  fleet::FleetRouter router(quick_fleet(2));

  // Two replicas of NIPS10 land on different devices (least-loaded
  // placement); NIPS20 gets one.
  const auto r0 = router.deploy(nips10);
  const auto r1 = router.deploy(nips10);
  EXPECT_NE(r0.member, r1.member);
  router.deploy(nips20);
  EXPECT_EQ(router.replica_count("NIPS10@1"), 2u);
  EXPECT_EQ(router.served_models(),
            (std::vector<std::string>{"NIPS10@1", "NIPS20@1"}));
  EXPECT_EQ(router.input_features("NIPS10"), 10u);
  EXPECT_EQ(router.input_features("NIPS20@1"), 20u);

  router.start();
  Rng rng(23);
  std::vector<std::pair<model::ModelHandle, std::vector<std::uint8_t>>> sent;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t r = 0; r < 16; ++r) {
    const auto& artifact = r % 3 == 0 ? nips20 : nips10;
    auto samples = random_rows(rng, 2, artifact->input_features());
    auto future = router.try_submit(artifact->id(), samples);
    ASSERT_TRUE(future.has_value());
    futures.push_back(std::move(*future));
    sent.emplace_back(artifact, std::move(samples));
  }
  for (std::size_t r = 0; r < sent.size(); ++r) {
    expect_reference(sent[r].first, sent[r].second, futures[r].get());
  }
  router.stop();

  // Conservation: every routed request was accepted by exactly one
  // member, and the members' own accounting agrees with the router's.
  const auto stats = router.stats();
  EXPECT_EQ(stats.routed_requests, 16u);
  EXPECT_EQ(stats.accepted_requests + stats.rejected_requests,
            stats.routed_requests);
  EXPECT_EQ(stats.rejected_requests, 0u);
  EXPECT_EQ(stats.accepted_samples, 32u);
  std::uint64_t member_requests = 0;
  std::uint64_t member_samples = 0;
  std::uint64_t member_failed = 0;
  for (std::size_t m = 0; m < router.member_count(); ++m) {
    const auto member_stats = router.server(m).stats();
    member_requests += member_stats.requests;
    member_samples += member_stats.samples;
    member_failed += member_stats.failed_requests;
  }
  EXPECT_EQ(member_requests, stats.accepted_requests);
  EXPECT_EQ(member_samples, stats.accepted_samples);
  EXPECT_EQ(member_failed, 0u);
  // Both NIPS10 replicas saw traffic: round-robin spreads the lane.
  EXPECT_GT(router.server(r0.member).stats().requests, 0u);
  EXPECT_GT(router.server(r1.member).stats().requests, 0u);
}

TEST(FleetRouter, FailsOverToAnotherReplicaWhenAMemberQueueIsFull) {
  auto nips10 = nips_artifact(10);
  auto config = quick_fleet(2);
  // Tiny per-member queue bound: 4 samples fill a member.
  config.server.max_queue_samples = 4;
  fleet::FleetRouter router(config);
  router.deploy(nips10);
  router.deploy(nips10);

  // Before start() nothing drains, so admission is deterministic: the
  // first request fills one member, the second fails over to the other,
  // the third finds every replica full and is rejected.
  Rng rng(31);
  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 3; ++r) {
    requests.push_back(random_rows(rng, 4, 10));
    auto future = router.try_submit("NIPS10@1", requests.back());
    if (r < 2) {
      ASSERT_TRUE(future.has_value()) << "request " << r;
      futures.push_back(std::move(*future));
    } else {
      EXPECT_FALSE(future.has_value());
    }
  }
  const auto before = router.stats();
  EXPECT_EQ(before.routed_requests, 3u);
  EXPECT_EQ(before.accepted_requests, 2u);
  EXPECT_EQ(before.rejected_requests, 1u);

  router.start();
  for (std::size_t r = 0; r < futures.size(); ++r) {
    expect_reference(nips10, requests[r], futures[r].get());
  }
  router.stop();
}

TEST(FleetRouter, RebalanceScalesHotModelsUpAndColdModelsDown) {
  auto hot = nips_artifact(10);
  auto cold = nips_artifact(20);
  fleet::FleetRouter router(quick_fleet(2));
  router.deploy(hot);
  router.deploy(cold);
  router.deploy(cold);
  EXPECT_EQ(router.replica_count("NIPS20@1"), 2u);
  router.start();

  // Skewed traffic: the hot model takes ~94% of the samples.
  Rng rng(41);
  std::vector<std::future<std::vector<double>>> futures;
  for (int r = 0; r < 15; ++r) {
    auto future = router.try_submit("NIPS10@1", random_rows(rng, 2, 10));
    ASSERT_TRUE(future.has_value());
    futures.push_back(std::move(*future));
  }
  auto cold_future = router.try_submit("NIPS20@1", random_rows(rng, 2, 20));
  ASSERT_TRUE(cold_future.has_value());
  futures.push_back(std::move(*cold_future));
  for (auto& future : futures) future.get();  // drain before rebalancing

  fleet::RebalancePolicy policy;
  policy.hot_share = 0.6;
  policy.cold_share = 0.1;
  const auto report = router.rebalance(policy);
  EXPECT_TRUE(report.changed());
  EXPECT_EQ(report.scaled_up, (std::vector<std::string>{"NIPS10@1"}));
  EXPECT_EQ(report.scaled_down, (std::vector<std::string>{"NIPS20@1"}));
  EXPECT_EQ(report.sample_deltas.at("NIPS10@1"), 30u);
  EXPECT_EQ(report.sample_deltas.at("NIPS20@1"), 2u);
  EXPECT_EQ(router.replica_count("NIPS10@1"), 2u);
  EXPECT_EQ(router.replica_count("NIPS20@1"), 1u);

  // A quiet fleet is steady state: deltas were re-baselined, so a pass
  // with no new traffic changes nothing.
  const auto steady = router.rebalance(policy);
  EXPECT_FALSE(steady.changed());

  // The new replica serves: more hot traffic resolves correctly.
  std::vector<std::vector<std::uint8_t>> samples;
  std::vector<std::future<std::vector<double>>> more;
  for (int r = 0; r < 6; ++r) {
    samples.push_back(random_rows(rng, 2, 10));
    auto future = router.try_submit("NIPS10", samples.back());
    ASSERT_TRUE(future.has_value());
    more.push_back(std::move(*future));
  }
  for (std::size_t r = 0; r < more.size(); ++r) {
    expect_reference(hot, samples[r], more[r].get());
  }
  router.stop();

  const auto stats = router.stats();
  EXPECT_EQ(stats.deployments, 4u);
  EXPECT_EQ(stats.undeployments, 1u);
  EXPECT_EQ(stats.accepted_requests + stats.rejected_requests,
            stats.routed_requests);
}

TEST(FleetRouter, PlacementDeficitsPropagateAndLeaveTheFleetUnchanged) {
  fleet::FleetRouter router(quick_fleet(2));
  auto nips10 = nips_artifact(10);
  // Fill both devices' PE budgets completely.
  router.deploy(nips10, 8);
  router.deploy(nips_artifact(10, "2"), 8);
  EXPECT_EQ(router.device(0).free_pe_slots(), 0);
  EXPECT_EQ(router.device(1).free_pe_slots(), 0);

  try {
    router.deploy(nips_artifact(10, "3"), 2);
    FAIL() << "expected PlacementDeficitError";
  } catch (const fpga::PlacementDeficitError& error) {
    EXPECT_NE(std::string(error.what()).find("PE slots"), std::string::npos);
  }
  EXPECT_EQ(router.replica_count("NIPS10@3"), 0u);
  EXPECT_EQ(router.served_models(),
            (std::vector<std::string>{"NIPS10@1", "NIPS10@2"}));

  // Undeploy frees the slots; the next deploy fits again.
  router.undeploy_one("NIPS10@2");
  EXPECT_EQ(router.device(router.deploy(nips_artifact(10, "3"), 2).member)
                .free_pe_slots(),
            6);
}

TEST(FleetRouter, ValidatesModelReferences) {
  fleet::FleetRouter router(quick_fleet(1));
  auto v1 = nips_artifact(10, "1");
  auto v2 = nips_artifact(10, "2");
  router.deploy(v1);
  EXPECT_THROW(router.try_submit("absent", {}), RuntimeApiError);
  EXPECT_THROW(router.input_features("absent"), RuntimeApiError);
  EXPECT_THROW(router.undeploy_one("absent"), RuntimeApiError);

  // A bare name shared by two versions is ambiguous.
  router.deploy(v2);
  EXPECT_THROW(router.try_submit("NIPS10", {}), RuntimeApiError);
  EXPECT_EQ(router.replica_count("NIPS10@2"), 1u);
  router.undeploy_one("NIPS10@2");
  EXPECT_EQ(router.replica_count("NIPS10@2"), 0u);
}

}  // namespace
}  // namespace spnhbm
