#!/usr/bin/env bash
# CLI-level soak smoke:
#
#   1. `spnhbm soak` with the mixed device+network chaos plan must run
#      two virtual minutes, pass the full assertion stack (conservation,
#      convergence, zero leaks) and write a bench-style JSON report,
#   2. the same seed + the same plan must reproduce the stdout summary
#      byte for byte,
#   3. a --disarm run must be byte-identical to running with no plan at
#      all (the injection sites cost nothing when disarmed),
#   4. loadgen must exit non-zero when the failed fraction exceeds
#      --max-failure-rate, and its report must carry the give-up
#      histogram.
#
# Usage: soak_smoke.sh <spnhbm-cli> <model.spn> <samples.csv> <work-dir> \
#                      <model2.spn> <samples2.csv> <fault-plan.json>
set -euo pipefail

CLI=$1
MODEL=$2
SAMPLES=$3
WORK=$4
MODEL2=$5
SAMPLES2=$6
PLAN=$7

mkdir -p "$WORK"

SOAK_ARGS=(--model a="$MODEL" --model b="$MODEL2"
           --requests a="$SAMPLES" --requests b="$SAMPLES2"
           --seed 42 --minutes 2)

# 1. Chaos soak: two virtual minutes under the mixed fault plan.
"$CLI" soak "${SOAK_ARGS[@]}" --fault-plan "$PLAN" \
  --report-out "$WORK/soak_report.json" \
  > "$WORK/soak_chaos.out" 2> "$WORK/soak_chaos.err"
cat "$WORK/soak_chaos.out"
grep -q "soak verdict: PASS" "$WORK/soak_chaos.out"
grep -q "faults injected:" "$WORK/soak_chaos.err"
grep -q '"bench":"soak"' "$WORK/soak_report.json"
grep -q '"passed":1' "$WORK/soak_report.json"
echo "chaos soak: PASS + report"

# 2. Reproducibility: same seed, same plan => identical summary.
"$CLI" soak "${SOAK_ARGS[@]}" --fault-plan "$PLAN" \
  > "$WORK/soak_chaos2.out" 2>/dev/null
diff "$WORK/soak_chaos.out" "$WORK/soak_chaos2.out"
echo "chaos soak reproduces by seed"

# 3. Disarm identity: an armed-then-disarmed plan must leave no trace.
"$CLI" soak "${SOAK_ARGS[@]}" > "$WORK/soak_calm.out" 2>/dev/null
"$CLI" soak "${SOAK_ARGS[@]}" --fault-plan "$PLAN" --disarm \
  > "$WORK/soak_disarmed.out" 2>/dev/null
diff "$WORK/soak_calm.out" "$WORK/soak_disarmed.out"
echo "disarmed plan is byte-identical to no plan"

# 4. loadgen --max-failure-rate: a 1-microsecond deadline fails every
# request; without the flag that is still exit 0 (rate gate off), with
# a 50% gate it must exit non-zero and report the give-up histogram.
PORT_FILE=$WORK/soak_smoke.port
rm -f "$PORT_FILE"
"$CLI" serve "$MODEL" --engines cpu --batch 8 --max-latency-us 500 \
  --listen 0 --port-file "$PORT_FILE" > "$WORK/soak_smoke.server.out" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "server died before binding:"; cat "$WORK/soak_smoke.server.out"
    exit 1; }
  sleep 0.1
done
PORT=$(cat "$PORT_FILE")

"$CLI" loadgen --connect "127.0.0.1:$PORT" --requests "$SAMPLES" \
  --count 50 --rate 5000 --seed 7 --deadline-us 1 \
  > "$WORK/soak_smoke.loadgen_ok.out"
grep -q "give-up" "$WORK/soak_smoke.loadgen_ok.out"
echo "all-failing loadgen without a gate exits 0 and logs give-ups"

if "$CLI" loadgen --connect "127.0.0.1:$PORT" --requests "$SAMPLES" \
     --count 50 --rate 5000 --seed 7 --deadline-us 1 \
     --max-failure-rate 0.5 > "$WORK/soak_smoke.loadgen_gate.out"; then
  echo "loadgen ignored --max-failure-rate"; exit 1
fi
echo "loadgen exits non-zero past --max-failure-rate"

"$CLI" loadgen --connect "127.0.0.1:$PORT" --requests "$SAMPLES" \
  --count 10 --rate 5000 --seed 7 --max-failure-rate 0.0 --shutdown \
  > "$WORK/soak_smoke.loadgen_drain.out"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
wait "$SERVER_PID" || {
  echo "server exited non-zero:"; cat "$WORK/soak_smoke.server.out"; exit 1; }
trap - EXIT

echo "soak smoke: OK"
