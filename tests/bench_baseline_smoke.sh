#!/usr/bin/env bash
# Perf-trajectory smoke: the fig2/fig6/sparse-vs-dense report generators
# must reproduce the committed bench/baselines/ records on this machine
# (the simulated numbers are deterministic), and bench_compare must
# actually catch a planted regression in --strict mode.
#
# Usage: bench_baseline_smoke.sh <bench-dir> <bench-compare> \
#                                <baselines-dir> <work-dir>
set -euo pipefail

BENCH_DIR=$1
COMPARE=$2
BASELINES=$3
WORK=$4

mkdir -p "$WORK"

SPNHBM_BENCH_JSON_DIR=$WORK "$BENCH_DIR/fig2_hbm_channel" > /dev/null
SPNHBM_BENCH_JSON_DIR=$WORK "$BENCH_DIR/fig6_end_to_end" > /dev/null
SPNHBM_BENCH_JSON_DIR=$WORK "$BENCH_DIR/sparse_vs_dense" > /dev/null
SPNHBM_BENCH_JSON_DIR=$WORK "$BENCH_DIR/tuned_vs_default" > /dev/null

# Fresh runs vs committed baselines: strict is safe here because every
# compared field is simulated (the host-dependent CPU reference in fig6
# is ignored).
"$COMPARE" "$BASELINES/BENCH_fig2_hbm_channel.json" \
  "$WORK/BENCH_fig2_hbm_channel.json" --strict
"$COMPARE" "$BASELINES/BENCH_fig6_end_to_end.json" \
  "$WORK/BENCH_fig6_end_to_end.json" --strict \
  --ignore native_cpu_samples_per_s
"$COMPARE" "$BASELINES/BENCH_sparse_vs_dense.json" \
  "$WORK/BENCH_sparse_vs_dense.json" --strict
"$COMPARE" "$BASELINES/BENCH_tuned_vs_default.json" \
  "$WORK/BENCH_tuned_vs_default.json" --strict
echo "fresh runs reproduce the committed baselines"

# A planted 50% throughput drop must warn by default and fail --strict.
cat > "$WORK/planted.json" <<'EOF'
{"bench":"planted","records":[{"series":"a","x_samples_per_s":100.0}]}
EOF
cat > "$WORK/planted_regressed.json" <<'EOF'
{"bench":"planted","records":[{"series":"a","x_samples_per_s":50.0}]}
EOF
OUT=$("$COMPARE" "$WORK/planted.json" "$WORK/planted_regressed.json")
echo "$OUT" | grep -q "REGRESSION"
echo "$OUT" | grep -q "1 regression"
if "$COMPARE" "$WORK/planted.json" "$WORK/planted_regressed.json" \
    --strict > /dev/null; then
  echo "bench_compare --strict missed a planted regression"; exit 1
fi
echo "bench_compare catches planted regressions"
echo "bench baseline smoke: OK"
