// Integration tests across the whole stack: text format -> compiler ->
// composition -> runtime -> results, parameterised over model sizes and
// arithmetic formats, plus fault-injection ("chaos") runs on the DMA path.
#include <gtest/gtest.h>

#include <sstream>

#include "spnhbm/compiler/serialize.hpp"
#include "spnhbm/runtime/inference_runtime.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/text_format.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm {
namespace {

struct FlowParam {
  std::size_t variables;
  arith::FormatKind format;
};

std::unique_ptr<arith::ArithBackend> make_backend(arith::FormatKind kind) {
  switch (kind) {
    case arith::FormatKind::kFloat64: return arith::make_float64_backend();
    case arith::FormatKind::kCfp:
      return arith::make_cfp_backend(arith::paper_cfp_format());
    case arith::FormatKind::kLns:
      return arith::make_lns_backend(arith::paper_lns_format());
    case arith::FormatKind::kPosit:
      return arith::make_posit_backend(arith::paper_posit_format());
  }
  return nullptr;
}

class FullFlowTest : public ::testing::TestWithParam<FlowParam> {};

TEST_P(FullFlowTest, TextToAcceleratorToResults) {
  const auto param = GetParam();
  // 1. Learn, serialise to text, re-parse (the SPFlow interchange step).
  const auto model = workload::make_nips_model(param.variables);
  const spn::Spn reparsed = spn::parse_spn(spn::to_text(model.spn));

  // 2. Compile; round-trip the compiled artifact through the binary
  //    design format.
  const auto backend = make_backend(param.format);
  const auto compiled = compiler::compile_spn(reparsed, *backend);
  std::stringstream artifact;
  compiler::save_design(compiled, artifact);
  const auto module = compiler::load_design(artifact);

  // 3. Compose a 2-PE device and run real samples end-to-end.
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.pe_count = 2;
  tapasco::Device device(runner, module, *backend, composition);
  runtime::InferenceRuntime rt(runner, device, module);

  // In-distribution documents (uniform random bytes would push every
  // joint probability below the reduced-precision formats' ranges).
  workload::CorpusConfig corpus;
  corpus.vocabulary = param.variables;
  corpus.documents = 123;
  corpus.seed = 1000 + param.variables;
  const std::size_t count = corpus.documents;
  const std::vector<std::uint8_t> samples =
      workload::make_bag_of_words(corpus).to_bytes();
  const auto results = rt.infer(samples);
  ASSERT_EQ(results.size(), count);

  // 4. Compare against the reference evaluator. Bounds are format-shaped:
  //    posit's tapered precision loses fraction bits far from 1.0, and
  //    joints below ~1e-33 approach CFP's flush-to-zero region.
  const double floor = param.format == arith::FormatKind::kPosit ? 1e-25
                                                                 : 1e-33;
  const double tolerance =
      param.format == arith::FormatKind::kPosit ? 1e-2 : 1e-3;
  spn::Evaluator reference(model.spn);
  int compared = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double want = reference.evaluate_bytes(
        std::span<const std::uint8_t>(samples).subspan(i * param.variables,
                                                       param.variables));
    if (want < floor) continue;
    EXPECT_NEAR(results[i] / want, 1.0, tolerance) << "sample " << i;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndFormats, FullFlowTest,
    ::testing::Values(FlowParam{10, arith::FormatKind::kCfp},
                      FlowParam{10, arith::FormatKind::kLns},
                      FlowParam{10, arith::FormatKind::kPosit},
                      FlowParam{10, arith::FormatKind::kFloat64},
                      FlowParam{20, arith::FormatKind::kCfp},
                      FlowParam{20, arith::FormatKind::kLns}),
    [](const auto& info) {
      return "NIPS" + std::to_string(info.param.variables) + "_" +
             arith::format_kind_name(info.param.format);
    });

TEST(FaultInjection, RuntimeSurvivesDmaFaults) {
  // 5% of DMA transfers abort; the driver's retry path must deliver the
  // same results, just later.
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model.spn, *backend);

  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.dma_failure_rate = 0.05;
  tapasco::Device device(runner, module, *backend, composition);
  runtime::InferenceRuntime rt(runner, device, module);

  Rng rng(7);
  const std::size_t count = 300;
  std::vector<std::uint8_t> samples(count * 10);
  for (auto& b : samples) b = static_cast<std::uint8_t>(rng.next_below(48));
  const auto results = rt.infer(samples);
  ASSERT_EQ(results.size(), count);

  spn::Evaluator reference(model.spn);
  for (std::size_t i = 0; i < count; ++i) {
    const double want = reference.evaluate_bytes(
        std::span<const std::uint8_t>(samples).subspan(i * 10, 10));
    if (want > 1e-25) {
      EXPECT_NEAR(results[i] / want, 1.0, 1e-3);
    }
  }
}

TEST(FaultInjection, FaultsCostThroughputButNotCorrectness) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model.spn, *backend);
  const auto run_rate = [&](double failure_rate) {
    sim::Scheduler scheduler;
    sim::ProcessRunner runner(scheduler);
    tapasco::CompositionConfig composition;
    composition.pe_count = 4;
    composition.compute_results = false;
    composition.dma_failure_rate = failure_rate;
    tapasco::Device device(runner, module, *backend, composition);
    runtime::InferenceRuntime rt(runner, device, module);
    const auto stats = rt.run(4'000'000);
    if (failure_rate > 0.0) {
      EXPECT_GT(device.dma().failed_transfers(), 0u);
    }
    return stats.samples_per_second;
  };
  const double clean = run_rate(0.0);
  const double faulty = run_rate(0.20);
  EXPECT_LT(faulty, clean);        // retries cost time
  EXPECT_GT(faulty, clean * 0.5);  // but the system stays functional
}

TEST(FaultInjection, PersistentFailureSurfacesAfterRetries) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model.spn, *backend);
  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  tapasco::CompositionConfig composition;
  composition.compute_results = false;
  composition.dma_failure_rate = 0.98;  // practically always failing
  tapasco::Device device(runner, module, *backend, composition);
  runtime::InferenceRuntime rt(runner, device, module);
  EXPECT_THROW(rt.run(1 << 20), pcie::DmaError);
}

TEST(Determinism, IdenticalRunsProduceIdenticalVirtualTime) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model.spn, *backend);
  const auto elapsed = [&] {
    sim::Scheduler scheduler;
    sim::ProcessRunner runner(scheduler);
    tapasco::CompositionConfig composition;
    composition.pe_count = 3;
    composition.compute_results = false;
    tapasco::Device device(runner, module, *backend, composition);
    runtime::RuntimeConfig config;
    config.threads_per_pe = 2;
    runtime::InferenceRuntime rt(runner, device, module, config);
    return rt.run(3'000'000).elapsed;
  };
  EXPECT_EQ(elapsed(), elapsed());
}

}  // namespace
}  // namespace spnhbm
