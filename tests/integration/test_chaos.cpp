// Chaos acceptance tests (robustness tentpole): a fixed-seed fault plan
// over the full stack — ChaosEngine-wrapped FPGA simulation plus a CPU
// fallback behind the self-healing InferenceServer — must (1) produce
// results identical to the fault-free run, because every injected fault
// is transient and absorbed by retry/failover, (2) reproduce the exact
// same injected-fault sequence per (site, instance) when run twice with
// the same seed, and (3) leave the substrate byte-identical when the
// injector is disarmed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "spnhbm/engine/chaos_engine.hpp"
#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/fault/fault.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm {
namespace {

constexpr std::size_t kVariables = 10;
constexpr std::size_t kRequests = 8;
constexpr std::size_t kSamplesPerRequest = 8;

std::vector<std::uint8_t> make_documents(std::size_t count,
                                         std::uint64_t seed) {
  workload::CorpusConfig corpus;
  corpus.vocabulary = kVariables;
  corpus.documents = count;
  corpus.seed = seed;
  return workload::make_bag_of_words(corpus).to_bytes();
}

struct ChaosRun {
  std::vector<std::vector<double>> results;
  /// Injected-fault sequence per (site, instance): the determinism witness.
  std::map<std::pair<std::string, std::string>,
           std::vector<std::pair<std::uint64_t, fault::FaultKind>>>
      log;
  engine::ServerStats stats;
};

/// One full serving run. When `plan` is set it is armed for the duration;
/// requests are queued before start() so batch formation is deterministic.
ChaosRun run_serving(const std::optional<fault::FaultPlan>& plan) {
  const auto model = workload::make_nips_model(kVariables);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);

  auto fpga = std::make_shared<engine::ChaosEngine>(
      std::make_unique<engine::FpgaSimEngine>(module, *backend));
  auto cpu = std::make_shared<engine::ChaosEngine>(
      std::make_unique<engine::CpuEngine>(module));

  std::unique_ptr<fault::ScopedFaultPlan> armed;
  if (plan.has_value()) {
    armed = std::make_unique<fault::ScopedFaultPlan>(*plan);
  }

  engine::ServerConfig config;
  config.batch_samples = kSamplesPerRequest;
  config.policy = engine::DispatchPolicy::kRoundRobin;
  config.retry.backoff_base = std::chrono::microseconds(50);
  // Transient-only plans must never quarantine an engine mid-run: that
  // would make batch placement depend on wall-clock probe timing.
  config.health.quarantine_after = 100;
  // Same priority tier: a failed FPGA batch can fail over to the CPU
  // engine (retry prefers a different engine within the dispatch tier).
  engine::InferenceServer server(config);
  server.register_engine(fpga, /*priority=*/0);
  server.register_engine(cpu, /*priority=*/0);

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  for (std::size_t r = 0; r < kRequests; ++r) {
    requests.push_back(make_documents(kSamplesPerRequest, 1000 + r));
    futures.push_back(server.submit(requests[r]));
  }
  server.start();
  server.stop();

  ChaosRun run;
  for (auto& future : futures) run.results.push_back(future.get());
  if (plan.has_value()) {
    for (const fault::InjectedFault& entry : fault::injector().log()) {
      run.log[{entry.site, entry.instance}].push_back(
          {entry.op_index, entry.kind});
    }
  }
  run.stats = server.stats();
  return run;
}

fault::FaultPlan transient_plan(const std::string& fpga_name) {
  // Every rule is transient: failed submits retry/fail over, stalls only
  // cost time. A fault-free run must therefore produce identical results.
  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultRule submit_fail;
  submit_fail.site = "engine.submit";
  submit_fail.instance = fpga_name;
  submit_fail.kind = fault::FaultKind::kFail;
  submit_fail.has_window = true;
  submit_fail.from = 0;
  submit_fail.until = 2;
  plan.rules.push_back(submit_fail);

  fault::FaultRule hbm_stall;
  hbm_stall.site = "hbm.access";
  hbm_stall.kind = fault::FaultKind::kStall;
  hbm_stall.every = 5;
  hbm_stall.duration_us = 20.0;
  plan.rules.push_back(hbm_stall);

  fault::FaultRule dma_stall;
  dma_stall.site = "pcie.dma";
  dma_stall.kind = fault::FaultKind::kStall;
  dma_stall.every = 3;
  dma_stall.duration_us = 50.0;
  plan.rules.push_back(dma_stall);
  return plan;
}

TEST(ChaosServing, TransientFaultsAreAbsorbedAndResultsMatchFaultFree) {
  const ChaosRun baseline = run_serving(std::nullopt);
  EXPECT_TRUE(baseline.log.empty());
  EXPECT_EQ(baseline.stats.batch_retries, 0u);

  const auto model = workload::make_nips_model(kVariables);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  const std::string fpga_name =
      engine::FpgaSimEngine(module, *backend).capabilities().name;

  const ChaosRun chaos = run_serving(transient_plan(fpga_name));

  // The first two FPGA submits were injected to fail...
  const auto it = chaos.log.find({std::string("engine.submit"), fpga_name});
  ASSERT_NE(it, chaos.log.end());
  EXPECT_EQ(it->second.size(), 2u);
  EXPECT_GE(chaos.stats.batch_retries, 2u);
  EXPECT_GE(chaos.stats.failovers, 2u);
  EXPECT_EQ(chaos.stats.failed_requests, 0u);
  EXPECT_EQ(chaos.stats.deadline_expirations, 0u);

  // ...and despite the chaos, every request resolves with exactly the
  // fault-free probabilities.
  ASSERT_EQ(chaos.results.size(), baseline.results.size());
  for (std::size_t r = 0; r < baseline.results.size(); ++r) {
    ASSERT_EQ(chaos.results[r].size(), baseline.results[r].size());
    for (std::size_t i = 0; i < baseline.results[r].size(); ++i) {
      EXPECT_DOUBLE_EQ(chaos.results[r][i], baseline.results[r][i])
          << "request " << r << " sample " << i;
    }
  }
}

TEST(ChaosServing, SameSeedReproducesTheExactFaultSequence) {
  const auto model = workload::make_nips_model(kVariables);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  const std::string fpga_name =
      engine::FpgaSimEngine(module, *backend).capabilities().name;
  const fault::FaultPlan plan = transient_plan(fpga_name);

  const ChaosRun first = run_serving(plan);
  const ChaosRun second = run_serving(plan);

  // Identical per-(site, instance) injection sequences: same ops, same
  // kinds, in the same order.
  EXPECT_EQ(first.log, second.log);
  EXPECT_FALSE(first.log.empty());
  // And identical results.
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t r = 0; r < first.results.size(); ++r) {
    EXPECT_EQ(first.results[r], second.results[r]) << "request " << r;
  }
}

TEST(ChaosServing, DisarmedInjectorLeavesTheSubstrateUntouched) {
  // The byte-identical guarantee behind the figure benchmarks: with the
  // injector disarmed, two timed FPGA simulation runs of the same
  // workload agree exactly — results and virtual time — with the fault
  // framework compiled in.
  fault::injector().disarm();
  const std::uint64_t injected_before = fault::injector().injected();
  const auto model = workload::make_nips_model(kVariables);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  const auto samples = make_documents(64, 7);

  engine::FpgaSimEngine first(module, *backend);
  engine::FpgaSimEngine second(module, *backend);
  EXPECT_EQ(first.infer(samples), second.infer(samples));
  EXPECT_DOUBLE_EQ(first.measure_throughput(100'000),
                   second.measure_throughput(100'000));
  EXPECT_EQ(fault::injector().injected(), injected_before);
}

}  // namespace
}  // namespace spnhbm
