#include <gtest/gtest.h>

#include <cmath>

#include "spnhbm/baselines/cpu_engine.hpp"
#include "spnhbm/baselines/reference_platforms.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/stats.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::baselines {
namespace {

TEST(CpuEngine, MatchesReferenceEvaluator) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  CpuInferenceEngine engine(module, 2);

  Rng rng(3);
  const std::size_t count = 1000;
  std::vector<std::uint8_t> samples(count * 10);
  for (auto& b : samples) b = static_cast<std::uint8_t>(rng.next_below(256));
  std::vector<double> results(count);
  engine.infer(samples, results);

  spn::Evaluator reference(model.spn);
  for (std::size_t i = 0; i < count; ++i) {
    const double want = reference.evaluate_bytes(
        std::span<const std::uint8_t>(samples).subspan(i * 10, 10));
    EXPECT_DOUBLE_EQ(results[i], want) << "sample " << i;
  }
}

TEST(CpuEngine, HandlesNonLaneAlignedBatches) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  CpuInferenceEngine engine(module, 1);
  for (const std::size_t count : {1u, 7u, 8u, 9u, 63u}) {
    std::vector<std::uint8_t> samples(count * 10, 5);
    std::vector<double> results(count, -1.0);
    engine.infer(samples, results);
    for (const double r : results) EXPECT_GT(r, 0.0);
  }
}

TEST(CpuEngine, EmptyBatchIsNoop) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  CpuInferenceEngine engine(module, 1);
  EXPECT_NO_THROW(engine.infer({}, {}));
}

TEST(CpuEngine, RejectsMismatchedSizes) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  CpuInferenceEngine engine(module, 1);
  std::vector<std::uint8_t> samples(15);  // not a multiple of 10
  std::vector<double> results(2);
  EXPECT_THROW(engine.infer(samples, results), std::logic_error);
}

TEST(CpuEngine, ThroughputIsMeasurable) {
  const auto model = workload::make_nips_model(10);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  CpuInferenceEngine engine(module, 1);
  const double rate = engine.measure_throughput(50'000);
  EXPECT_GT(rate, 1e5);  // sanity: >100 Ksamples/s even on a weak host
}

TEST(ReferencePlatforms, CurvesCoverAllBenchmarks) {
  for (const auto& curve : all_reference_curves()) {
    for (const std::size_t size : workload::nips_benchmark_sizes()) {
      EXPECT_GT(curve.at(size), 0.0) << curve.platform;
    }
    EXPECT_FALSE(curve.provenance.empty());
  }
}

TEST(ReferencePlatforms, PublishedAbsolutesExact) {
  EXPECT_DOUBLE_EQ(paper_hbm_curve().at(10), 614.7e6);
  EXPECT_DOUBLE_EQ(paper_hbm_curve().at(80), 116.6e6);
}

TEST(ReferencePlatforms, SpeedupConstraintsHold) {
  const auto hbm = paper_hbm_curve();
  const auto cpu = xeon_e5_2680v3_curve();
  const auto gpu = tesla_v100_curve();
  const auto f1 = aws_f1_curve();

  std::vector<double> cpu_speedups, gpu_speedups, f1_speedups;
  for (const std::size_t size : workload::nips_benchmark_sizes()) {
    cpu_speedups.push_back(hbm.at(size) / cpu.at(size));
    gpu_speedups.push_back(hbm.at(size) / gpu.at(size));
    f1_speedups.push_back(hbm.at(size) / f1.at(size));
  }
  // CPU wins the small NIPS10 benchmark; loses from NIPS20 on.
  EXPECT_LT(cpu_speedups.front(), 1.0);
  EXPECT_GT(cpu_speedups[1], 1.0);
  // Published aggregates: geo 1.6x / max 2.46x (CPU), geo 6.9x / max 8.4x
  // (V100), geo 1.29x / max 1.50x (F1).
  EXPECT_NEAR(geometric_mean(cpu_speedups), 1.6, 0.02);
  EXPECT_NEAR(cpu_speedups.back(), 2.46, 0.01);
  EXPECT_NEAR(geometric_mean(gpu_speedups), 6.9, 0.05);
  EXPECT_NEAR(gpu_speedups.back(), 8.4, 0.01);
  EXPECT_NEAR(geometric_mean(f1_speedups), 1.29, 0.01);
  EXPECT_NEAR(f1_speedups.back(), 1.50, 0.01);
}

TEST(ReferencePlatforms, UnknownSizeThrows) {
  EXPECT_THROW(paper_hbm_curve().at(55), Error);
}

TEST(ReferencePlatforms, V100LosesEverywhere) {
  // The paper: "the Nvidia Tesla V100 is unsuitable for SPN inference".
  const auto hbm = paper_hbm_curve();
  const auto gpu = tesla_v100_curve();
  const auto cpu = xeon_e5_2680v3_curve();
  for (const std::size_t size : workload::nips_benchmark_sizes()) {
    EXPECT_LT(gpu.at(size), hbm.at(size));
    EXPECT_LT(gpu.at(size), cpu.at(size));
  }
}

}  // namespace
}  // namespace spnhbm::baselines
