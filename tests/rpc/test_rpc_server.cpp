// End-to-end RPC tests over real loopback sockets: handshake content,
// concurrent-client correctness (the checksum results prove byte-exact
// delivery), typed error mapping, admission-control shedding that never
// stalls the socket, the shutdown frame, and the conservation law
// received = accepted + rejected + shed, accepted = completed + failed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../engine/mock_engine.hpp"
#include "spnhbm/compiler/sparse_evidence.hpp"
#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/rpc/client.hpp"
#include "spnhbm/rpc/resilient_client.hpp"
#include "spnhbm/rpc/server.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/queries.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/telemetry/trace.hpp"
#include "spnhbm/telemetry/trace_context.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::rpc {
namespace {

using engine_test::kFeatures;
using engine_test::MockEngine;
using engine_test::expect_encoded;
using engine_test::make_request;

/// A full serving stack on an ephemeral loopback port.
struct Harness {
  explicit Harness(MockEngine::Config mock_config = {},
                   AdmissionConfig admission = {},
                   std::size_t max_connections = 64) {
    engine::ServerConfig config;
    config.batch_samples = 8;
    config.max_latency = std::chrono::microseconds(200);
    server = std::make_unique<engine::InferenceServer>(config);
    mock = std::make_shared<MockEngine>(mock_config);
    server->register_engine(mock);
    server->start();

    RpcServerConfig rpc_config;
    rpc_config.port = 0;  // ephemeral
    rpc_config.max_connections = max_connections;
    rpc_config.admission = admission;
    rpc_config.build_version = "test-build";
    front = std::make_unique<RpcServer>(*server, rpc_config);
    front->start();
  }

  ~Harness() {
    mock->release();  // harmless when the engine is not gated
    front->stop();
    server->stop();
  }

  std::unique_ptr<RpcClient> connect() {
    return RpcClient::connect("127.0.0.1", front->port());
  }

  std::shared_ptr<MockEngine> mock;
  std::unique_ptr<engine::InferenceServer> server;
  std::unique_ptr<RpcServer> front;
};

TEST(RpcServer, HandshakeCarriesBuildAndModels) {
  Harness harness;
  const auto client = harness.connect();
  const ServerInfo& info = client->server_info();
  EXPECT_EQ(info.protocol_version, kProtocolVersion);
  EXPECT_EQ(info.build_version, "test-build");
  ASSERT_EQ(info.models.size(), 1u);
  EXPECT_EQ(info.models[0].id, "mock@1");
  EXPECT_EQ(info.models[0].input_features, kFeatures);
  EXPECT_EQ(info.input_features("mock@1"), kFeatures);
  EXPECT_EQ(info.input_features("mock"), kFeatures);  // unique bare name
  EXPECT_THROW(info.input_features("other"), RpcError);
}

TEST(RpcServer, ConcurrentClientsGetTheirOwnResults) {
  // The acceptance shape of the tentpole: >= 4 concurrent connections,
  // every response byte-identical to the engine's local computation.
  constexpr std::size_t kClients = 5;
  constexpr std::size_t kRequestsPerClient = 20;
  Harness harness;

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const auto client = harness.connect();
      std::vector<std::vector<std::uint8_t>> requests;
      std::vector<std::future<std::vector<double>>> futures;
      for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
        // Distinct rows per (client, request): a response routed to the
        // wrong request or connection changes the checksum.
        const auto tag =
            static_cast<std::uint8_t>(c * kRequestsPerClient + r);
        const std::size_t rows = 1 + (c + r) % 3;
        requests.push_back(make_request(rows, tag));
        futures.push_back(client->submit("mock@1", requests.back()));
      }
      for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
        expect_encoded(requests[r], futures[r].get());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.received, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.accepted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.completed, kClients * kRequestsPerClient);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
  EXPECT_EQ(stats.request_latency_us.count, kClients * kRequestsPerClient);
}

TEST(RpcServer, TypedErrorsForBadRequests) {
  Harness harness;
  const auto client = harness.connect();

  try {
    client->infer("absent@1", make_request(1, 1));
    FAIL() << "expected kUnknownModel";
  } catch (const RpcStatusError& e) {
    EXPECT_EQ(e.status(), Status::kUnknownModel);
    EXPECT_FALSE(e.retryable());
  }

  try {
    client->infer("mock@1", {1, 2, 3});  // not a multiple of kFeatures
    FAIL() << "expected kInvalidRequest";
  } catch (const RpcStatusError& e) {
    EXPECT_EQ(e.status(), Status::kInvalidRequest);
    EXPECT_FALSE(e.retryable());
  }

  // Rejections count toward conservation, on the `rejected` side.
  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.received, 2u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

TEST(RpcServer, RateLimitShedsWithRetryableOverloaded) {
  AdmissionConfig admission;
  admission.rate_limit_rps = 0.001;  // one token, then dry for the test
  admission.burst = 1.0;
  Harness harness({}, admission);
  const auto client = harness.connect();

  const auto request = make_request(1, 3);
  expect_encoded(request, client->infer("mock@1", request));  // the token
  try {
    client->infer("mock@1", make_request(1, 4));
    FAIL() << "expected kOverloaded";
  } catch (const RpcStatusError& e) {
    EXPECT_EQ(e.status(), Status::kOverloaded);
    EXPECT_TRUE(e.retryable());
  }
  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.shed_rate_limit, 1u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

TEST(RpcServer, QueueDepthShedRespondsWhileEngineIsWedged) {
  // The "overload never stalls the socket" guarantee: with the engine
  // blocked and the queue-depth gate closed, a shed response must come
  // back promptly — the reader thread answers from admission control
  // without ever waiting on queue space. The probe uses its own
  // connection: on the first client's connection the shed response would
  // (correctly) queue behind the wedged in-flight request, because the
  // writer delivers in request order.
  MockEngine::Config mock_config;
  mock_config.gated = true;
  AdmissionConfig admission;
  admission.max_outstanding_samples = 1;
  Harness harness(mock_config, admission);
  const auto client = harness.connect();
  const auto prober = harness.connect();

  const auto first = make_request(1, 10);
  auto first_future = client->submit("mock@1", first);  // fills the bound
  // Make sure the wedged request reached the engine before probing, so
  // outstanding_samples() actually reflects it.
  while (harness.server->outstanding_samples() == 0) {
    std::this_thread::yield();
  }

  auto shed_future = prober->submit("mock@1", make_request(1, 11));
  ASSERT_EQ(shed_future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "shed response stalled behind the wedged engine";
  try {
    shed_future.get();
    FAIL() << "expected kOverloaded";
  } catch (const RpcStatusError& e) {
    EXPECT_EQ(e.status(), Status::kOverloaded);
    EXPECT_TRUE(e.retryable());
  }

  harness.mock->release();
  expect_encoded(first, first_future.get());
  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.shed_queue_depth, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

TEST(RpcServer, PerRequestDeadlineMapsToDeadlineExceeded) {
  MockEngine::Config mock_config;
  mock_config.gated = true;
  Harness harness(mock_config);
  const auto client = harness.connect();

  auto future =
      client->submit("mock@1", make_request(1, 20), /*deadline_us=*/10'000);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  try {
    future.get();
    FAIL() << "expected kDeadlineExceeded";
  } catch (const RpcStatusError& e) {
    EXPECT_EQ(e.status(), Status::kDeadlineExceeded);
  }
  harness.mock->release();
  // The deadline-expired request still counts exactly once, as failed.
  // (stats() is read after release; the writer already counted it when it
  // sent the response.)
  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
}

/// Raw ADMIN poll over a fresh socket: consume the server's HELLO, send
/// one kAdmin frame, decode the kAdminReply. RpcClient's reader thread
/// only expects kResponse frames, so the introspection plane speaks the
/// wire directly — exactly what `spnhbm top` does.
AdminReplyFrame admin_poll(std::uint16_t port) {
  Socket socket = Socket::connect("127.0.0.1", port);
  const auto read_frame = [&socket]() {
    std::uint8_t header[kFrameHeaderBytes];
    if (!socket.recv_exact(header, sizeof(header))) {
      throw RpcError("peer closed before frame");
    }
    FrameType type;
    const std::uint32_t length = decode_frame_header(header, type);
    Frame frame;
    frame.type = type;
    frame.body.resize(length);
    if (length > 0 && !socket.recv_exact(frame.body.data(), length)) {
      throw RpcError("peer closed mid-frame");
    }
    return frame;
  };
  const Frame hello = read_frame();
  EXPECT_EQ(hello.type, FrameType::kHello);
  const auto wire = encode_frame(encode_admin());
  socket.send_all(wire.data(), wire.size());
  const Frame reply = read_frame();
  EXPECT_EQ(reply.type, FrameType::kAdminReply);
  return decode_admin_reply(reply.body);
}

/// Parses a Prometheus text exposition into name -> value, skipping
/// comments and labelled (histogram bucket) lines — the same projection
/// `spnhbm top` renders from.
std::map<std::string, double> parse_exposition_lines(const std::string& text) {
  std::map<std::string, double> values;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    const std::string name = line.substr(0, space);
    if (name.find('{') != std::string::npos) continue;
    values[name] = std::stod(line.substr(space + 1));
  }
  return values;
}

TEST(RpcServer, AdminReplyCarriesParseableMetricsAndHealth) {
  Harness harness;
  const auto client = harness.connect();
  const auto request = make_request(1, 50);
  expect_encoded(request, client->infer("mock@1", request));
  expect_encoded(request, client->infer("mock@1", request));

  const AdminReplyFrame reply = admin_poll(harness.front->port());
  EXPECT_EQ(reply.protocol_version, kProtocolVersion);
  EXPECT_EQ(reply.build_version, "test-build");

  const auto metrics = parse_exposition_lines(reply.metrics_text);
  ASSERT_TRUE(metrics.count("spnhbm_rpc_completed"));
  EXPECT_GE(metrics.at("spnhbm_rpc_completed"), 2.0);
  ASSERT_TRUE(metrics.count("spnhbm_rpc_request_latency_us_count"));
  EXPECT_GE(metrics.at("spnhbm_rpc_request_latency_us_count"), 2.0);

  // Per-engine health comes from the inference server behind the front.
  EXPECT_NE(reply.health_text.find("engine 0"), std::string::npos);
  EXPECT_NE(reply.health_text.find("healthy"), std::string::npos);
  // A single server has no fleet replica map.
  EXPECT_TRUE(reply.replicas_text.empty());
  EXPECT_NE(reply.tail_text.find("retained"), std::string::npos);

  // The ADMIN exchange is out of band: it never perturbs the inference
  // conservation law.
  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.received, 2u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

TEST(RpcServer, TracedRequestsLandInTheTailSampler) {
  // Enable the global tracer for this test only: the client mints a
  // context per request (head sampler at 1), the server's writer offers
  // every traced request to the tail ring.
  struct TracerGuard {
    TracerGuard() {
      telemetry::tracer().enable();
      telemetry::head_sampler().set_period(1);
    }
    ~TracerGuard() { telemetry::tracer().disable(); }
  } guard;

  Harness harness;
  const auto client = harness.connect();
  const auto request = make_request(1, 60);
  expect_encoded(request, client->infer("mock@1", request));
  expect_encoded(request, client->infer("mock@1", request));

  EXPECT_EQ(harness.front->tail_sampler().offered(), 2u);
  EXPECT_EQ(harness.front->tail_sampler().size(), 2u);
  const auto kept = harness.front->tail_sampler().snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_NE(kept[0].trace_id, 0u);
  EXPECT_EQ(kept[0].model, "mock@1");
  EXPECT_GT(kept[0].latency_us, 0.0);
  ASSERT_FALSE(kept[0].spans.empty());
  EXPECT_EQ(kept[0].spans[0].name, "request");

  const AdminReplyFrame reply = admin_poll(harness.front->port());
  EXPECT_NE(reply.tail_text.find("2/64 retained of 2 offered"),
            std::string::npos);
  EXPECT_NE(reply.tail_text.find("trace="), std::string::npos);
}

TEST(RpcServer, ShutdownFrameSignalsTheServer) {
  Harness harness;
  const auto client = harness.connect();
  EXPECT_FALSE(harness.front->shutdown_requested());
  client->request_shutdown();
  // The frame travels asynchronously; wait_for_shutdown_request blocks
  // until the reader thread has seen it.
  harness.front->wait_for_shutdown_request();
  EXPECT_TRUE(harness.front->shutdown_requested());
}

TEST(RpcServer, ConnectionLimitClosesExtraClients) {
  Harness harness({}, {}, /*max_connections=*/1);
  const auto first = harness.connect();  // hello received => registered
  EXPECT_THROW(harness.connect(), RpcError);
  EXPECT_EQ(harness.front->stats().connections_rejected, 1u);
  // The surviving client still works.
  const auto request = make_request(1, 30);
  expect_encoded(request, first->infer("mock@1", request));
}

TEST(RpcServer, StopResolvesInFlightRequestsAndClientSeesClosure) {
  Harness harness;
  const auto client = harness.connect();
  const auto request = make_request(2, 40);
  expect_encoded(request, client->infer("mock@1", request));
  harness.front->stop();
  // The connection is gone; new submits fail with a transport error, not
  // a hang.
  EXPECT_THROW(client->infer("mock@1", make_request(1, 41)), Error);
  const RpcServerStats stats = harness.front->stats();
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

// --- Query-generic serving (wire v4) --------------------------------------

constexpr std::size_t kQueryVars = 6;

/// A serving stack hosting the same SPN under all three query kinds, as
/// three real CpuEngine lanes ("q@1", "q@1#marginal", "q@1#mpe").
struct QueryHarness {
  QueryHarness() {
    spn::RandomSpnConfig spn_config;
    spn_config.variables = kQueryVars;
    spn_config.leaf_domain = compiler::kMissingByte;
    spn_config.seed = 2026;
    spn = spn::make_random_spn(spn_config);

    engine::ServerConfig config;
    config.batch_samples = 8;
    config.max_latency = std::chrono::microseconds(200);
    server = std::make_unique<engine::InferenceServer>(config);
    for (const auto query :
         {compiler::QueryKind::kJoint, compiler::QueryKind::kMarginal,
          compiler::QueryKind::kMpe}) {
      compiler::CompileOptions options;
      options.query = query;
      options.input_domain = compiler::kMissingByte;
      server->register_engine(std::make_shared<engine::CpuEngine>(
          model::ModelArtifact::compile("q", "1", spn,
                                        arith::make_float64_backend(),
                                        options)));
    }
    server->start();

    RpcServerConfig rpc_config;
    rpc_config.port = 0;
    rpc_config.build_version = "test-build";
    front = std::make_unique<RpcServer>(*server, rpc_config);
    front->start();
  }

  ~QueryHarness() {
    front->stop();
    server->stop();
  }

  std::unique_ptr<RpcClient> connect() {
    return RpcClient::connect("127.0.0.1", front->port());
  }

  /// Rows with random missingness plus the double twins (NaN) the local
  /// reference queries read.
  void make_batch(std::size_t count, std::uint64_t seed,
                  std::vector<std::uint8_t>& bytes,
                  std::vector<std::vector<double>>& doubles) {
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<double> row(kQueryVars);
      for (std::size_t v = 0; v < kQueryVars; ++v) {
        if (rng.next_below(3) == 0) {
          bytes.push_back(compiler::kMissingByte);
          row[v] = spn::missing_value();
        } else {
          const auto byte = static_cast<std::uint8_t>(
              rng.next_below(compiler::kMissingByte));
          bytes.push_back(byte);
          row[v] = static_cast<double>(byte);
        }
      }
      doubles.push_back(std::move(row));
    }
  }

  spn::Spn spn;
  std::unique_ptr<engine::InferenceServer> server;
  std::unique_ptr<RpcServer> front;
};

TEST(RpcServer, RemoteMarginalAndMpeMatchTheLocalReference) {
  QueryHarness harness;
  const auto client = harness.connect();

  // The handshake advertises every lane with its width.
  const ServerInfo& info = client->server_info();
  ASSERT_EQ(info.models.size(), 3u);
  EXPECT_EQ(info.input_features("q@1#marginal"), kQueryVars);

  std::vector<std::uint8_t> bytes;
  std::vector<std::vector<double>> doubles;
  harness.make_batch(16, 31, bytes, doubles);

  QueryOptions marginal;
  marginal.query_kind = 1;
  const auto p_marginal = client->infer("q@1", bytes, 0, marginal);
  QueryOptions mpe;
  mpe.query_kind = 2;
  const auto p_mpe = client->infer("q@1", bytes, 0, mpe);

  spn::Evaluator reference(harness.spn);
  ASSERT_EQ(p_marginal.size(), 16u);
  ASSERT_EQ(p_mpe.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    // Results travel as raw IEEE bits: remote must equal local exactly.
    EXPECT_EQ(p_marginal[i], reference.evaluate(doubles[i])) << i;
    EXPECT_EQ(p_mpe[i], spn::max_product_value(harness.spn, doubles[i],
                                               compiler::kMissingByte))
        << i;
  }
  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

TEST(RpcServer, RemoteSparseEvidenceEqualsDense) {
  QueryHarness harness;
  const auto client = harness.connect();

  // Mostly-missing evidence (one observed variable per sample) is the
  // regime sparse encoding exists for: the stream must be smaller than
  // the dense rows it replaces.
  std::vector<std::uint8_t> bytes;
  Rng rng(32);
  for (std::size_t i = 0; i < 12; ++i) {
    std::vector<std::uint8_t> row(kQueryVars, compiler::kMissingByte);
    row[rng.next_below(kQueryVars)] =
        static_cast<std::uint8_t>(rng.next_below(compiler::kMissingByte));
    bytes.insert(bytes.end(), row.begin(), row.end());
  }
  // The marginal module's default evidence is all-missing, so the sparse
  // twin carries only the observed variables.
  const std::vector<std::uint8_t> defaults(kQueryVars,
                                           compiler::kMissingByte);
  const auto stream = compiler::encode_sparse(
      compiler::sparse_from_dense(bytes, kQueryVars, defaults));
  ASSERT_LT(stream.size(), bytes.size());

  QueryOptions dense;
  dense.query_kind = 1;
  QueryOptions sparse;
  sparse.query_kind = 1;
  sparse.encoding = kEncodingSparse;
  sparse.sample_count = 12;
  const auto p_dense = client->infer("q@1", bytes, 0, dense);
  const auto p_sparse = client->infer("q@1", stream, 0, sparse);
  ASSERT_EQ(p_sparse.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(p_sparse[i], p_dense[i]) << i;
  }
}

TEST(RpcServer, MalformedSparseStreamsRejectWithInvalidRequest) {
  QueryHarness harness;
  const auto client = harness.connect();

  const std::vector<std::uint8_t> defaults(kQueryVars,
                                           compiler::kMissingByte);
  std::vector<std::uint8_t> bytes;
  std::vector<std::vector<double>> doubles;
  harness.make_batch(2, 33, bytes, doubles);
  auto stream = compiler::encode_sparse(
      compiler::sparse_from_dense(bytes, kQueryVars, defaults));

  QueryOptions sparse;
  sparse.query_kind = 1;
  sparse.encoding = kEncodingSparse;
  sparse.sample_count = 2;

  // Truncated stream.
  std::vector<std::uint8_t> truncated(stream.begin(), stream.end() - 1);
  try {
    client->infer("q@1", truncated, 0, sparse);
    FAIL() << "expected kInvalidRequest";
  } catch (const RpcStatusError& e) {
    EXPECT_EQ(e.status(), Status::kInvalidRequest);
    EXPECT_FALSE(e.retryable());
  }

  // Duplicate index inside one sample: {count=2, (3,1), (3,2)}.
  const std::vector<std::uint8_t> duplicate = {2, 0, 3, 0, 1, 3, 0, 2,  //
                                               0, 0};
  try {
    client->infer("q@1", duplicate, 0, sparse);
    FAIL() << "expected kInvalidRequest";
  } catch (const RpcStatusError& e) {
    EXPECT_EQ(e.status(), Status::kInvalidRequest);
  }

  // Both rejections stayed at the front door: books conserved, no engine
  // marked unhealthy.
  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
  for (std::size_t i = 0; i < harness.server->engine_count(); ++i) {
    EXPECT_EQ(harness.server->engine_health(i),
              engine::EngineHealth::kHealthy);
  }
}

/// Minimal v3 peer: accepts connections and answers each with a HELLO
/// advertising protocol_version 3, then holds the socket open.
struct V3Peer {
  V3Peer() : listener(0) {
    acceptor = std::thread([this] {
      while (true) {
        Socket conn = listener.accept();
        if (!conn.valid()) return;  // listener shut down
        HelloFrame hello;
        hello.protocol_version = 3;
        hello.build_version = "old-build";
        hello.models = {{"q@1", static_cast<std::uint32_t>(kQueryVars)}};
        const auto wire = encode_frame(encode_hello(hello));
        conn.send_all(wire.data(), wire.size());
        std::uint8_t byte;
        try {
          conn.recv_exact(&byte, 1);  // block until the client hangs up
        } catch (const RpcError&) {
        }
      }
    });
  }

  ~V3Peer() {
    listener.shutdown();
    acceptor.join();
  }

  Listener listener;
  std::thread acceptor;
};

TEST(RpcServer, QueryRequestsAgainstV3PeerFailClientSide) {
  V3Peer peer;
  const auto client =
      RpcClient::connect("127.0.0.1", peer.listener.port());
  EXPECT_EQ(client->server_info().protocol_version, 3u);

  // Marginal/MPE/sparse requests need v4: the client refuses before
  // sending a frame the old server could not parse.
  QueryOptions marginal;
  marginal.query_kind = 1;
  EXPECT_THROW(client->submit("q@1", std::vector<std::uint8_t>(kQueryVars, 0),
                              0, 0, marginal),
               RpcError);
  EXPECT_TRUE(client->alive());  // the refusal never touched the socket
}

TEST(RpcServer, ResilientClientGivesUpOnV3PeerWithoutRetrying) {
  V3Peer peer;
  ResilientClientConfig config;
  config.port = peer.listener.port();
  config.max_attempts = 5;
  ResilientClient client(config);

  QueryOptions marginal;
  marginal.query_kind = 1;
  try {
    client.infer("q@1", std::vector<std::uint8_t>(kQueryVars, 0), 0,
                 marginal);
    FAIL() << "expected RpcGiveUpError";
  } catch (const RpcGiveUpError& e) {
    // Terminal, not transport: one classification, zero retries.
    EXPECT_EQ(e.reason(), GiveUpReason::kNonRetryable);
    EXPECT_EQ(e.last_status(), Status::kInvalidRequest);
  }
  EXPECT_TRUE(client.retry_log().empty());
  client.close();
}

}  // namespace
}  // namespace spnhbm::rpc
