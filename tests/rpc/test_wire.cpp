// Wire-protocol unit tests: frame layout, codec roundtrips, protocol
// violation handling, and the token bucket (with injected time, so the
// refill arithmetic is tested deterministically).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "spnhbm/rpc/admission.hpp"
#include "spnhbm/rpc/wire.hpp"

namespace spnhbm::rpc {
namespace {

TEST(Wire, FrameLayoutIsMagicTypeLength) {
  RequestFrame request;
  request.request_id = 7;
  request.model = "m@1";
  request.samples = {1, 2, 3, 4};
  const auto wire = encode_frame(encode_request(request));
  ASSERT_GE(wire.size(), kFrameHeaderBytes);
  // The magic is the ASCII bytes "SPNR" on the wire (0x52'4E'50'53
  // little-endian), so a desynchronised stream is caught on sight.
  EXPECT_EQ(wire[0], 'S');
  EXPECT_EQ(wire[1], 'P');
  EXPECT_EQ(wire[2], 'N');
  EXPECT_EQ(wire[3], 'R');
  EXPECT_EQ(wire[4], static_cast<std::uint8_t>(FrameType::kRequest));
  const std::uint32_t body_length =
      static_cast<std::uint32_t>(wire[5]) |
      (static_cast<std::uint32_t>(wire[6]) << 8) |
      (static_cast<std::uint32_t>(wire[7]) << 16) |
      (static_cast<std::uint32_t>(wire[8]) << 24);
  EXPECT_EQ(body_length, wire.size() - kFrameHeaderBytes);
}

TEST(Wire, HelloRoundtrip) {
  HelloFrame hello;
  hello.build_version = "0.5.0-test";
  hello.models = {{"nips5@1", 5}, {"nips80@2", 80}};
  const Frame frame = encode_hello(hello);
  EXPECT_EQ(frame.type, FrameType::kHello);
  const HelloFrame decoded = decode_hello(frame.body);
  EXPECT_EQ(decoded.protocol_version, kProtocolVersion);
  EXPECT_EQ(decoded.build_version, "0.5.0-test");
  ASSERT_EQ(decoded.models.size(), 2u);
  EXPECT_EQ(decoded.models[0].id, "nips5@1");
  EXPECT_EQ(decoded.models[0].input_features, 5u);
  EXPECT_EQ(decoded.models[1].id, "nips80@2");
  EXPECT_EQ(decoded.models[1].input_features, 80u);
}

TEST(Wire, RequestRoundtrip) {
  RequestFrame request;
  request.request_id = 0xDEADBEEFCAFEull;
  request.model = "mock@1";
  request.deadline_us = 250'000;
  request.samples = {0, 1, 2, 255, 254, 253};
  const Frame frame = encode_request(request);
  EXPECT_EQ(frame.type, FrameType::kRequest);
  const RequestFrame decoded = decode_request(frame.body);
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.model, request.model);
  EXPECT_EQ(decoded.deadline_us, request.deadline_us);
  EXPECT_EQ(decoded.samples, request.samples);
}

TEST(Wire, ResponseRoundtripOk) {
  ResponseFrame response;
  response.request_id = 42;
  response.status = Status::kOk;
  response.results = {1.0, 0.25, 6.02214076e23, -0.0};
  const ResponseFrame decoded =
      decode_response(encode_response(response).body);
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.status, Status::kOk);
  ASSERT_EQ(decoded.results.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    // Bit-exact: f64 results travel as raw IEEE bits.
    EXPECT_EQ(decoded.results[i], response.results[i]) << i;
  }
  EXPECT_TRUE(decoded.error.empty());
}

TEST(Wire, ResponseRoundtripError) {
  ResponseFrame response;
  response.request_id = 9;
  response.status = Status::kOverloaded;
  response.error = "shed by rate limit (retryable)";
  const ResponseFrame decoded =
      decode_response(encode_response(response).body);
  EXPECT_EQ(decoded.status, Status::kOverloaded);
  EXPECT_EQ(decoded.error, response.error);
  EXPECT_TRUE(decoded.results.empty());
}

TEST(Wire, ShutdownFrameHasEmptyBody) {
  const Frame frame = encode_shutdown();
  EXPECT_EQ(frame.type, FrameType::kShutdown);
  EXPECT_TRUE(frame.body.empty());
}

TEST(Wire, HeaderRejectsBadMagicTypeAndOversizedBody) {
  const auto wire = encode_frame(encode_shutdown());
  std::uint8_t header[kFrameHeaderBytes];
  FrameType type;

  std::copy(wire.begin(), wire.begin() + kFrameHeaderBytes, header);
  EXPECT_NO_THROW(decode_frame_header(header, type));

  auto corrupted = header[0];
  header[0] = 'X';
  EXPECT_THROW(decode_frame_header(header, type), WireError);
  header[0] = corrupted;

  header[4] = 99;  // unknown frame type
  EXPECT_THROW(decode_frame_header(header, type), WireError);
  header[4] = static_cast<std::uint8_t>(FrameType::kShutdown);

  // body_length past kMaxBodyBytes is a violation, not an allocation.
  const std::uint32_t huge = kMaxBodyBytes + 1;
  header[5] = static_cast<std::uint8_t>(huge);
  header[6] = static_cast<std::uint8_t>(huge >> 8);
  header[7] = static_cast<std::uint8_t>(huge >> 16);
  header[8] = static_cast<std::uint8_t>(huge >> 24);
  EXPECT_THROW(decode_frame_header(header, type), WireError);
}

TEST(Wire, DecodersRejectTruncatedAndTrailingBytes) {
  RequestFrame request;
  request.model = "m@1";
  request.samples = {1, 2, 3};
  Frame frame = encode_request(request);

  std::vector<std::uint8_t> truncated(frame.body.begin(),
                                      frame.body.end() - 1);
  EXPECT_THROW(decode_request(truncated), WireError);

  std::vector<std::uint8_t> trailing = frame.body;
  trailing.push_back(0);
  EXPECT_THROW(decode_request(trailing), WireError);
}

TEST(Wire, TraceBlockRoundtripsWhenSet) {
  RequestFrame request;
  request.request_id = 11;
  request.model = "mock@1";
  request.samples = {9, 8, 7};
  request.trace.trace_id = 0xABCDEF0123456789ull;
  request.trace.parent_span = 0x42;
  const RequestFrame decoded = decode_request(encode_request(request).body);
  EXPECT_TRUE(decoded.trace.valid());
  EXPECT_EQ(decoded.trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(decoded.trace.parent_span, request.trace.parent_span);
  EXPECT_EQ(decoded.samples, request.samples);
}

TEST(Wire, UntracedRequestOmitsTheTraceBlock) {
  // A v2 request without a context is byte-identical to the v1 layout:
  // the optional trailing block is absent, not zero-filled, so a v1 peer
  // parses it unchanged.
  RequestFrame traced, untraced;
  traced.model = untraced.model = "m@1";
  traced.samples = untraced.samples = {1, 2, 3};
  traced.trace.trace_id = 5;
  EXPECT_EQ(encode_request(untraced).body.size() + 16,
            encode_request(traced).body.size());
  const RequestFrame decoded = decode_request(encode_request(untraced).body);
  EXPECT_FALSE(decoded.trace.valid());
  EXPECT_EQ(decoded.trace.trace_id, 0u);
}

TEST(Wire, V1PeerRequestBodyStillDecodes) {
  // Hand-build the v1 body layout: u64 request_id, string model,
  // u64 deadline_us, u32-length samples — and nothing after it.
  const auto put_u32 = [](std::vector<std::uint8_t>& b, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  const auto put_u64 = [](std::vector<std::uint8_t>& b, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  std::vector<std::uint8_t> body;
  put_u64(body, 77);               // request_id
  body.push_back(3);               // u16 string length, little-endian
  body.push_back(0);
  body.push_back('m');
  body.push_back('@');
  body.push_back('1');
  put_u64(body, 0);                // deadline_us
  put_u32(body, 2);                // samples length
  body.push_back(0xAA);
  body.push_back(0xBB);

  const RequestFrame decoded = decode_request(body);
  EXPECT_EQ(decoded.request_id, 77u);
  EXPECT_EQ(decoded.model, "m@1");
  ASSERT_EQ(decoded.samples.size(), 2u);
  EXPECT_FALSE(decoded.trace.valid());
}

TEST(Wire, TracedRequestRejectsTruncatedAndTrailingBytes) {
  RequestFrame request;
  request.model = "m@1";
  request.samples = {1, 2, 3};
  request.trace.trace_id = 99;
  const Frame frame = encode_request(request);

  // A partial trace block is a violation, not a silent v1 fallback.
  std::vector<std::uint8_t> truncated(frame.body.begin(),
                                      frame.body.end() - 1);
  EXPECT_THROW(decode_request(truncated), WireError);

  std::vector<std::uint8_t> trailing = frame.body;
  trailing.push_back(0);
  EXPECT_THROW(decode_request(trailing), WireError);
}

TEST(Wire, IdempotencyKeyRoundtripsAlone) {
  // Tail of 8 bytes = key without a trace block (v3).
  RequestFrame request;
  request.model = "m@1";
  request.samples = {1, 2, 3};
  request.idempotency_key = 0x1122334455667788ull;
  const Frame frame = encode_request(request);
  const RequestFrame decoded = decode_request(frame.body);
  EXPECT_EQ(decoded.idempotency_key, request.idempotency_key);
  EXPECT_FALSE(decoded.trace.valid());
}

TEST(Wire, IdempotencyKeyRoundtripsWithTraceBlock) {
  // Tail of 24 bytes = trace block then key; both must survive.
  RequestFrame request;
  request.model = "m@1";
  request.samples = {1, 2, 3};
  request.trace.trace_id = 0xABCull;
  request.trace.parent_span = 7;
  request.idempotency_key = 0x99AABBCCDDEEFF00ull;
  const RequestFrame decoded = decode_request(encode_request(request).body);
  EXPECT_EQ(decoded.idempotency_key, request.idempotency_key);
  EXPECT_TRUE(decoded.trace.valid());
  EXPECT_EQ(decoded.trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(decoded.trace.parent_span, request.trace.parent_span);
}

TEST(Wire, KeylessRequestOmitsTheKeyBlock) {
  // Key 0 means "no key": the frame stays byte-identical to the v1/v2
  // layouts so old peers parse it unchanged.
  RequestFrame keyed, keyless;
  keyed.model = keyless.model = "m@1";
  keyed.samples = keyless.samples = {1, 2, 3};
  keyed.idempotency_key = 123;
  EXPECT_EQ(encode_request(keyless).body.size() + 8,
            encode_request(keyed).body.size());
  const RequestFrame decoded = decode_request(encode_request(keyless).body);
  EXPECT_EQ(decoded.idempotency_key, 0u);
}

TEST(Wire, KeyedRequestRejectsTruncatedAndTrailingBytes) {
  // A malformed tail (7 or 9 bytes of trailing block) is a violation —
  // the 0/8/16/24 disambiguation must not guess.
  RequestFrame request;
  request.model = "m@1";
  request.samples = {1, 2, 3};
  request.idempotency_key = 42;
  const Frame frame = encode_request(request);

  std::vector<std::uint8_t> truncated(frame.body.begin(),
                                      frame.body.end() - 1);
  EXPECT_THROW(decode_request(truncated), WireError);

  std::vector<std::uint8_t> trailing = frame.body;
  trailing.push_back(0);
  EXPECT_THROW(decode_request(trailing), WireError);
}

TEST(Wire, Request2RoundtripDense) {
  RequestFrame request;
  request.request_id = 0xFEEDFACEull;
  request.model = "m@1";
  request.deadline_us = 50'000;
  request.query_kind = 1;  // marginal
  request.encoding = kEncodingDense;
  request.sample_count = 2;
  request.samples = {1, 2, 3, 4, 5, 6};
  const Frame frame = encode_request2(request);
  EXPECT_EQ(frame.type, FrameType::kRequest2);
  const RequestFrame decoded = decode_request2(frame.body);
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.model, request.model);
  EXPECT_EQ(decoded.deadline_us, request.deadline_us);
  EXPECT_EQ(decoded.query_kind, 1);
  EXPECT_EQ(decoded.encoding, kEncodingDense);
  EXPECT_EQ(decoded.sample_count, 2u);
  EXPECT_EQ(decoded.samples, request.samples);
  EXPECT_FALSE(decoded.trace.valid());
  EXPECT_EQ(decoded.idempotency_key, 0u);
}

TEST(Wire, Request2RoundtripSparseWithTraceAndKey) {
  // The full tail (trace block then key, 24 bytes) must survive after
  // the v4 fields, same disambiguation as plain REQUEST.
  RequestFrame request;
  request.request_id = 21;
  request.model = "m@1";
  request.query_kind = 2;  // MPE
  request.encoding = kEncodingSparse;
  request.sample_count = 3;
  // Opaque to the wire layer: any CSR stream bytes pass through.
  request.samples = {1, 0, 3, 0, 9, 0, 0, 2, 0, 1, 0, 4, 0, 7};
  request.trace.trace_id = 0x77ull;
  request.trace.parent_span = 5;
  request.idempotency_key = 0xA5A5A5A5ull;
  const RequestFrame decoded = decode_request2(encode_request2(request).body);
  EXPECT_EQ(decoded.query_kind, 2);
  EXPECT_EQ(decoded.encoding, kEncodingSparse);
  EXPECT_EQ(decoded.sample_count, 3u);
  EXPECT_EQ(decoded.samples, request.samples);
  EXPECT_TRUE(decoded.trace.valid());
  EXPECT_EQ(decoded.trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(decoded.trace.parent_span, request.trace.parent_span);
  EXPECT_EQ(decoded.idempotency_key, request.idempotency_key);
}

TEST(Wire, Request2EncoderRejectsBadFields) {
  RequestFrame request;
  request.model = "m@1";
  request.samples = {1, 2, 3};
  request.sample_count = 1;

  RequestFrame bad_kind = request;
  bad_kind.query_kind = 3;
  EXPECT_THROW(encode_request2(bad_kind), WireError);

  RequestFrame bad_encoding = request;
  bad_encoding.encoding = 2;
  EXPECT_THROW(encode_request2(bad_encoding), WireError);

  RequestFrame zero_count = request;
  zero_count.sample_count = 0;
  EXPECT_THROW(encode_request2(zero_count), WireError);
}

TEST(Wire, Request2RejectsTruncatedAndTrailingBytes) {
  RequestFrame request;
  request.model = "m@1";
  request.query_kind = 1;
  request.encoding = kEncodingSparse;
  request.sample_count = 1;
  request.samples = {1, 0, 2, 0, 9};
  const Frame frame = encode_request2(request);

  std::vector<std::uint8_t> truncated(frame.body.begin(),
                                      frame.body.end() - 1);
  EXPECT_THROW(decode_request2(truncated), WireError);

  std::vector<std::uint8_t> trailing = frame.body;
  trailing.push_back(0);
  EXPECT_THROW(decode_request2(trailing), WireError);
}

TEST(Wire, Request2DecoderRejectsCorruptQueryAndEncodingBytes) {
  // Corrupt the encoded bytes in place: the query-kind and encoding bytes
  // sit right after the u64 deadline, which follows the u16-length model
  // string and the u64 request id.
  RequestFrame request;
  request.model = "m@1";
  request.query_kind = 1;
  request.encoding = kEncodingDense;
  request.sample_count = 1;
  request.samples = {1, 2, 3};
  const Frame frame = encode_request2(request);
  const std::size_t query_offset = 8 + 2 + 3 + 8;  // id, len, "m@1", deadline

  std::vector<std::uint8_t> bad_kind = frame.body;
  ASSERT_EQ(bad_kind[query_offset], 1);
  bad_kind[query_offset] = 9;
  EXPECT_THROW(decode_request2(bad_kind), WireError);

  std::vector<std::uint8_t> bad_encoding = frame.body;
  ASSERT_EQ(bad_encoding[query_offset + 1], kEncodingDense);
  bad_encoding[query_offset + 1] = 7;
  EXPECT_THROW(decode_request2(bad_encoding), WireError);
}

TEST(Wire, AdminFrameHasEmptyBody) {
  const Frame frame = encode_admin();
  EXPECT_EQ(frame.type, FrameType::kAdmin);
  EXPECT_TRUE(frame.body.empty());
}

TEST(Wire, AdminReplyRoundtrip) {
  AdminReplyFrame reply;
  reply.build_version = "0.5.0-test";
  reply.metrics_text =
      "# TYPE spnhbm_rpc_completed counter\nspnhbm_rpc_completed 42\n";
  reply.health_text = "engine 0 model=m@1 health=healthy\n";
  reply.replicas_text = "m@1 -> member 0 partition p0 engine 0\n";
  reply.tail_text = "tail: 1/64 retained of 9 offered\n";
  const Frame frame = encode_admin_reply(reply);
  EXPECT_EQ(frame.type, FrameType::kAdminReply);
  const AdminReplyFrame decoded = decode_admin_reply(frame.body);
  EXPECT_EQ(decoded.protocol_version, kProtocolVersion);
  EXPECT_EQ(decoded.build_version, reply.build_version);
  EXPECT_EQ(decoded.metrics_text, reply.metrics_text);
  EXPECT_EQ(decoded.health_text, reply.health_text);
  EXPECT_EQ(decoded.replicas_text, reply.replicas_text);
  EXPECT_EQ(decoded.tail_text, reply.tail_text);
}

TEST(Wire, RetryableStatuses) {
  EXPECT_TRUE(is_retryable(Status::kOverloaded));
  EXPECT_TRUE(is_retryable(Status::kNoHealthyEngine));
  EXPECT_TRUE(is_retryable(Status::kShuttingDown));
  EXPECT_FALSE(is_retryable(Status::kOk));
  EXPECT_FALSE(is_retryable(Status::kInvalidRequest));
  EXPECT_FALSE(is_retryable(Status::kUnknownModel));
  EXPECT_FALSE(is_retryable(Status::kDeadlineExceeded));
  EXPECT_FALSE(is_retryable(Status::kInternalError));
}

TEST(TokenBucket, DisabledRateAlwaysAdmits) {
  TokenBucket bucket(0.0, 0.0);
  const auto now = TokenBucket::Clock::now();
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.try_acquire(now));
}

TEST(TokenBucket, BurstBoundsInstantaneousAdmissions) {
  TokenBucket bucket(10.0, 3.0);  // 10 rps, burst of 3, starts full
  const auto now = TokenBucket::Clock::now();
  EXPECT_TRUE(bucket.try_acquire(now));
  EXPECT_TRUE(bucket.try_acquire(now));
  EXPECT_TRUE(bucket.try_acquire(now));
  EXPECT_FALSE(bucket.try_acquire(now));  // bucket drained, no time passed
}

TEST(TokenBucket, RefillsAtTheConfiguredRate) {
  TokenBucket bucket(10.0, 1.0);
  const auto start = TokenBucket::Clock::now();
  EXPECT_TRUE(bucket.try_acquire(start));
  EXPECT_FALSE(bucket.try_acquire(start));
  // 10 rps = one token per 100 ms. 50 ms in: still dry.
  EXPECT_FALSE(bucket.try_acquire(start + std::chrono::milliseconds(50)));
  EXPECT_TRUE(bucket.try_acquire(start + std::chrono::milliseconds(101)));
  // The refill is capped at the burst: a long idle stretch does not bank
  // more than one token.
  const auto later = start + std::chrono::seconds(10);
  EXPECT_TRUE(bucket.try_acquire(later));
  EXPECT_FALSE(bucket.try_acquire(later));
}

}  // namespace
}  // namespace spnhbm::rpc
