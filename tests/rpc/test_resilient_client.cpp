// ResilientClient behaviour under deterministic network chaos:
//
//  * reconnect determinism — the same seed and the same fault plan must
//    reproduce the identical retry/backoff schedule (the retry_log) and
//    the identical final books across two independent runs,
//  * idempotent replay — a retried request whose original completed OK
//    is answered from the server cache (duplicates book), never
//    re-executed,
//  * in-flight duplicates get a retryable OVERLOADED answer,
//  * failed executions drop their key, so a retry re-executes.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../engine/mock_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/fault/fault.hpp"
#include "spnhbm/rpc/client.hpp"
#include "spnhbm/rpc/resilient_client.hpp"
#include "spnhbm/rpc/server.hpp"

namespace spnhbm::rpc {
namespace {

using engine_test::MockEngine;
using engine_test::expect_encoded;
using engine_test::make_request;

/// A full serving stack on an ephemeral loopback port.
struct Harness {
  explicit Harness(MockEngine::Config mock_config = {},
                   int engine_attempts = 3) {
    engine::ServerConfig config;
    config.batch_samples = 8;
    config.max_latency = std::chrono::microseconds(200);
    config.retry.max_attempts = engine_attempts;
    server = std::make_unique<engine::InferenceServer>(config);
    mock = std::make_shared<MockEngine>(mock_config);
    server->register_engine(mock);
    server->start();

    RpcServerConfig rpc_config;
    rpc_config.port = 0;  // ephemeral
    rpc_config.max_connections = 64;
    front = std::make_unique<RpcServer>(*server, rpc_config);
    front->start();
  }

  ~Harness() {
    mock->release();
    front->stop();
    server->stop();
  }

  std::shared_ptr<MockEngine> mock;
  std::unique_ptr<engine::InferenceServer> server;
  std::unique_ptr<RpcServer> front;
};

/// Everything one chaos run produces that must reproduce across runs.
struct RunTrace {
  std::vector<std::vector<double>> results;
  std::vector<RetryEvent> retry_log;
  std::uint64_t connects = 0;
  std::uint64_t server_duplicates = 0;
  bool conserved = false;
};

/// One complete chaos run: fresh server, fresh armed plan, one
/// ResilientClient sending `requests` sequential inferences. Sequential
/// submission keeps every (site, instance) op index deterministic, so
/// the injected fault sequence — and hence the retry schedule — is a
/// pure function of the seed and the plan.
RunTrace chaos_run(std::uint64_t seed, std::size_t requests) {
  Harness harness;

  fault::FaultPlan plan;
  plan.seed = seed;
  // Every connection's 3rd tx frame dies (HELLO is tx op 0, so each
  // connection delivers two responses and then drops one on the floor —
  // the dropped response was already computed, which is exactly the
  // replay-from-cache path). `every: 2` would drop every connection's
  // first response forever; 3 makes progress while reconnecting often.
  fault::FaultRule tx;
  tx.site = "rpc.conn.tx";
  tx.kind = fault::FaultKind::kFail;
  tx.every = 3;
  plan.rules.push_back(tx);
  // The client's very first dial fails, exercising the deterministic
  // connect backoff (retry_log key 0).
  fault::FaultRule dial;
  dial.site = "rpc.client.connect";
  dial.kind = fault::FaultKind::kFail;
  dial.from = 0;
  dial.until = 1;
  dial.has_window = true;
  plan.rules.push_back(dial);
  fault::ScopedFaultPlan armed(plan);

  ResilientClientConfig config;
  config.host = "127.0.0.1";
  config.port = harness.front->port();
  config.label = "det";
  config.seed = seed;
  config.max_attempts = 32;
  config.backoff_base_us = 50.0;
  config.backoff_cap_us = 500.0;
  config.connect_backoff_base_us = 50.0;
  config.connect_backoff_cap_us = 500.0;
  ResilientClient client(config);

  RunTrace trace;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto payload =
        make_request(1 + i % 3, static_cast<std::uint8_t>(i + 1));
    trace.results.push_back(client.infer("mock@1", payload));
    expect_encoded(payload, trace.results.back());
  }
  trace.retry_log = client.retry_log();
  trace.connects = client.connects();
  client.close();

  const RpcServerStats stats = harness.front->stats();
  trace.server_duplicates = stats.duplicates;
  trace.conserved = stats.conserved();
  return trace;
}

TEST(ResilientClient, SameSeedAndPlanReproduceTheRetrySchedule) {
  const RunTrace first = chaos_run(20260809, 10);
  const RunTrace second = chaos_run(20260809, 10);

  // The chaos plan must actually bite: reconnects happened, the dial
  // fault forced at least one connect backoff (key 0), and the server
  // replayed at least one retried request from its cache.
  EXPECT_GT(first.connects, 1u);
  ASSERT_FALSE(first.retry_log.empty());
  bool saw_connect_backoff = false;
  for (const RetryEvent& event : first.retry_log) {
    if (event.key == 0) saw_connect_backoff = true;
  }
  EXPECT_TRUE(saw_connect_backoff);
  EXPECT_GT(first.server_duplicates, 0u);
  EXPECT_TRUE(first.conserved);
  EXPECT_TRUE(second.conserved);

  // Determinism: identical results, identical books, and an identical
  // retry/backoff schedule entry for entry (submission is sequential,
  // so even the log order reproduces).
  EXPECT_EQ(first.results, second.results);
  EXPECT_EQ(first.connects, second.connects);
  EXPECT_EQ(first.server_duplicates, second.server_duplicates);
  ASSERT_EQ(first.retry_log.size(), second.retry_log.size());
  for (std::size_t i = 0; i < first.retry_log.size(); ++i) {
    EXPECT_EQ(first.retry_log[i].key, second.retry_log[i].key) << "entry " << i;
    EXPECT_EQ(first.retry_log[i].attempt, second.retry_log[i].attempt)
        << "entry " << i;
    EXPECT_EQ(first.retry_log[i].backoff_us, second.retry_log[i].backoff_us)
        << "entry " << i;
  }
}

TEST(ResilientClient, CompletedReplayLandsInTheDuplicatesBook) {
  Harness harness;
  auto client = RpcClient::connect("127.0.0.1", harness.front->port());
  const auto payload = make_request(2, 9);
  constexpr std::uint64_t kKey = 0xFEEDFACEull;

  const auto original = client->submit("mock@1", payload, 0, kKey).get();
  expect_encoded(payload, original);
  const std::size_t executed = harness.mock->submit_calls();

  // Same key again: the cached response is replayed byte-for-byte, the
  // engine never sees the retry, and the frame lands under duplicates.
  const auto replay = client->submit("mock@1", payload, 0, kKey).get();
  EXPECT_EQ(original, replay);
  EXPECT_EQ(harness.mock->submit_calls(), executed);

  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.received, 2u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

TEST(ResilientClient, InFlightDuplicateGetsRetryableOverload) {
  MockEngine::Config gated;
  gated.gated = true;
  Harness harness(gated);
  auto client = RpcClient::connect("127.0.0.1", harness.front->port());
  const auto payload = make_request(1, 3);
  constexpr std::uint64_t kKey = 0xC0FFEEull;

  auto pending = client->submit("mock@1", payload, 0, kKey);
  for (int i = 0; i < 500 && harness.front->stats().accepted == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(harness.front->stats().accepted, 1u);

  // The duplicate arrives while the original is still executing. It
  // must come over a second connection: responses are delivered in
  // order per connection, so on the original's connection the answer
  // would queue behind the gated response. Cross-connection it is
  // answered immediately with a retryable status rather than a second
  // execution.
  auto second = RpcClient::connect("127.0.0.1", harness.front->port());
  std::promise<std::pair<Status, std::string>> answered;
  second->submit_with_callback(
      "mock@1", payload, 0,
      [&](Status status, const std::vector<double>&, const std::string& error) {
        answered.set_value({status, error});
      },
      kKey);
  const auto [status, error] = answered.get_future().get();
  EXPECT_EQ(status, Status::kOverloaded);
  EXPECT_EQ(error, "duplicate of an in-flight request (retryable)");

  harness.mock->release();
  expect_encoded(payload, pending.get());
  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

TEST(ResilientClient, FailedExecutionDropsItsKeySoRetriesReExecute) {
  MockEngine::Config flaky;
  flaky.fail_first_n = 1;
  // One execution per batch: the engine server must not absorb the
  // failure itself — this test is about the RPC-layer key semantics.
  Harness harness(flaky, /*engine_attempts=*/1);
  auto client = RpcClient::connect("127.0.0.1", harness.front->port());
  const auto payload = make_request(1, 5);
  constexpr std::uint64_t kKey = 0xDEADBEEFull;

  std::promise<Status> failed;
  client->submit_with_callback(
      "mock@1", payload, 0,
      [&](Status status, const std::vector<double>&, const std::string&) {
        failed.set_value(status);
      },
      kKey);
  EXPECT_NE(failed.get_future().get(), Status::kOk);

  // The failure must not pin the key: the retry re-executes from
  // scratch (the engine sees a second submit) and succeeds.
  expect_encoded(payload, client->submit("mock@1", payload, 0, kKey).get());
  EXPECT_EQ(harness.mock->submit_calls(), 2u);

  const RpcServerStats stats = harness.front->stats();
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

}  // namespace
}  // namespace spnhbm::rpc
