// Load-generator tests: schedule determinism for every arrival process
// (no sockets involved), then end-to-end runs against a real serving
// stack — a healthy run where every request succeeds, and an overloaded
// run where the retryable sheds show up in the report without breaking
// the sent == sum(by_status) conservation law.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>

#include "../engine/mock_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/rpc/loadgen.hpp"
#include "spnhbm/rpc/server.hpp"
#include "spnhbm/spn/random_spn.hpp"

namespace spnhbm::rpc {
namespace {

using engine_test::MockEngine;
using engine_test::make_request;

TEST(LoadgenSchedule, ParsesArrivalProcessNames) {
  EXPECT_EQ(parse_arrival_process("fixed"), ArrivalProcess::kFixed);
  EXPECT_EQ(parse_arrival_process("poisson"), ArrivalProcess::kPoisson);
  EXPECT_EQ(parse_arrival_process("bursty"), ArrivalProcess::kBursty);
  EXPECT_THROW(parse_arrival_process("uniform"), Error);
}

TEST(LoadgenSchedule, FixedArrivalsAreEvenlySpaced) {
  LoadgenConfig config;
  config.arrival = ArrivalProcess::kFixed;
  config.rate_rps = 1000.0;  // period 1000 us
  config.request_count = 5;
  const auto schedule = make_schedule(config);
  ASSERT_EQ(schedule.size(), 5u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i], i * 1000u) << i;
  }
}

TEST(LoadgenSchedule, BurstyGroupsBackToBackAtTheMeanRate) {
  LoadgenConfig config;
  config.arrival = ArrivalProcess::kBursty;
  config.rate_rps = 1000.0;
  config.burst_size = 4;  // bursts every 4000 us
  config.request_count = 10;
  const auto schedule = make_schedule(config);
  ASSERT_EQ(schedule.size(), 10u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i], (i / 4) * 4000u) << i;
  }
}

TEST(LoadgenSchedule, PoissonIsSeedDeterministicWithPlausibleMean) {
  LoadgenConfig config;
  config.arrival = ArrivalProcess::kPoisson;
  config.rate_rps = 1000.0;
  config.request_count = 2000;
  config.seed = 7;
  const auto schedule = make_schedule(config);
  ASSERT_EQ(schedule.size(), 2000u);
  EXPECT_EQ(schedule, make_schedule(config));  // same seed, same schedule

  config.seed = 8;
  const auto other = make_schedule(config);
  EXPECT_NE(schedule, other);  // the seed actually feeds the draw

  // Offsets are sorted and the empirical mean inter-arrival is near the
  // configured 1000 us (deterministic given the seed, so a tight-ish
  // bound is safe).
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    ASSERT_GE(schedule[i], schedule[i - 1]);
  }
  const double mean_us =
      static_cast<double>(schedule.back()) /
      static_cast<double>(schedule.size() - 1);
  EXPECT_GT(mean_us, 900.0);
  EXPECT_LT(mean_us, 1100.0);
}

TEST(LoadgenSchedule, ModelPicksAreSeedDeterministicAndWeighted) {
  LoadgenConfig config;
  config.request_count = 4000;
  config.seed = 11;
  EXPECT_TRUE(make_model_picks(config).empty());  // single-model run

  config.traffic.push_back({"hot@1", 3.0, {}});
  config.traffic.push_back({"cold@1", 1.0, {}});
  const auto picks = make_model_picks(config);
  ASSERT_EQ(picks.size(), 4000u);
  EXPECT_EQ(picks, make_model_picks(config));  // same seed, same mix

  config.seed = 12;
  EXPECT_NE(picks, make_model_picks(config));  // the seed feeds the draw

  // The empirical split tracks the 3:1 weights.
  const auto hot = static_cast<double>(
      std::count(picks.begin(), picks.end(), std::size_t{0}));
  EXPECT_GT(hot / 4000.0, 0.70);
  EXPECT_LT(hot / 4000.0, 0.80);

  LoadgenConfig bad = config;
  bad.traffic[0].weight = 0.0;
  EXPECT_THROW(make_model_picks(bad), std::logic_error);
}

/// Serving stack on an ephemeral port for the e2e runs.
struct Stack {
  explicit Stack(MockEngine::Config mock_config = {},
                 AdmissionConfig admission = {}) {
    engine::ServerConfig config;
    config.batch_samples = 8;
    config.max_latency = std::chrono::microseconds(200);
    server = std::make_unique<engine::InferenceServer>(config);
    mock = std::make_shared<MockEngine>(mock_config);
    server->register_engine(mock);
    server->start();
    RpcServerConfig rpc_config;
    rpc_config.admission = admission;
    front = std::make_unique<RpcServer>(*server, rpc_config);
    front->start();
  }

  ~Stack() {
    mock->release();
    front->stop();
    server->stop();
  }

  std::shared_ptr<MockEngine> mock;
  std::unique_ptr<engine::InferenceServer> server;
  std::unique_ptr<RpcServer> front;
};

TEST(Loadgen, HealthyRunCompletesEveryRequest) {
  Stack stack;
  LoadgenConfig config;
  config.port = stack.front->port();
  config.model = "mock@1";
  config.payloads = {make_request(1, 1), make_request(2, 9)};
  config.request_count = 200;
  config.rate_rps = 20'000.0;
  config.arrival = ArrivalProcess::kPoisson;
  config.connections = 4;

  const LoadgenReport report = run_loadgen(config);
  EXPECT_EQ(report.sent, 200u);
  EXPECT_EQ(report.ok(), 200u);
  EXPECT_TRUE(report.conserved()) << report.describe();
  EXPECT_EQ(report.latency_us.count, 200u);
  EXPECT_GT(report.achieved_rps, 0.0);
  EXPECT_DOUBLE_EQ(report.offered_rps, 20'000.0);

  // Client- and server-side books agree.
  const RpcServerStats stats = stack.front->stats();
  EXPECT_EQ(stats.received, 200u);
  EXPECT_EQ(stats.completed, 200u);
  EXPECT_TRUE(stats.conserved()) << stats.describe();
}

TEST(Loadgen, OverloadShowsUpAsRetryableShedsNotHangs) {
  // A one-token bucket with a ~zero refill rate: the first request is
  // admitted, the rest must come back OVERLOADED while the run still
  // terminates (the open loop never waits for queue space).
  AdmissionConfig admission;
  admission.rate_limit_rps = 0.001;
  admission.burst = 1.0;
  Stack stack({}, admission);

  LoadgenConfig config;
  config.port = stack.front->port();
  config.payloads = {make_request(1, 5)};  // model defaults to the first
  config.request_count = 50;
  config.rate_rps = 50'000.0;
  config.arrival = ArrivalProcess::kBursty;
  config.burst_size = 10;

  const LoadgenReport report = run_loadgen(config);
  EXPECT_EQ(report.sent, 50u);
  EXPECT_TRUE(report.conserved()) << report.describe();
  EXPECT_GE(report.retryable(), 49u);
  EXPECT_EQ(report.ok() + report.retryable(), 50u);
  EXPECT_TRUE(stack.front->stats().conserved());
}

TEST(Loadgen, MixedModelTrafficSplitsByWeightAndConserves) {
  Stack stack;
  // A second model joins the running server, so the stack serves two
  // lanes through one wire endpoint.
  auto other = std::make_shared<MockEngine>();
  other->activate(model::ModelArtifact::compile(
      "other", "1",
      spn::make_random_spn([] {
        spn::RandomSpnConfig config;
        config.variables = engine_test::kFeatures;
        config.seed = 99;
        return config;
      }()),
      arith::make_float64_backend()));
  stack.server->register_engine(other);

  LoadgenConfig config;
  config.port = stack.front->port();
  config.traffic.push_back(
      {"mock@1", 3.0, {make_request(1, 1), make_request(2, 9)}});
  config.traffic.push_back({"other@1", 1.0, {make_request(1, 30)}});
  config.request_count = 200;
  config.rate_rps = 20'000.0;
  config.connections = 2;
  config.seed = 5;

  const LoadgenReport report = run_loadgen(config);
  EXPECT_EQ(report.sent, 200u);
  EXPECT_EQ(report.ok(), 200u);
  EXPECT_TRUE(report.conserved()) << report.describe();

  // Per-model accounting sums to the total and tracks the 3:1 mix.
  ASSERT_EQ(report.sent_by_model.size(), 2u);
  const std::uint64_t hot = report.sent_by_model.at("mock@1");
  const std::uint64_t cold = report.sent_by_model.at("other@1");
  EXPECT_EQ(hot + cold, report.sent);
  EXPECT_GT(hot, cold);

  // The server saw exactly the same split, lane by lane.
  const engine::ServerStats stats = stack.server->stats();
  EXPECT_EQ(stats.per_model.at("mock@1").requests, hot);
  EXPECT_EQ(stats.per_model.at("other@1").requests, cold);
  EXPECT_TRUE(stack.front->stats().conserved());
}

TEST(Loadgen, ShutdownAfterRunSignalsTheServer) {
  Stack stack;
  LoadgenConfig config;
  config.port = stack.front->port();
  config.payloads = {make_request(1, 2)};
  config.request_count = 10;
  config.rate_rps = 10'000.0;
  config.arrival = ArrivalProcess::kFixed;
  config.shutdown_server_after = true;

  const LoadgenReport report = run_loadgen(config);
  EXPECT_EQ(report.ok(), 10u);
  stack.front->wait_for_shutdown_request();
  EXPECT_TRUE(stack.front->shutdown_requested());
}

}  // namespace
}  // namespace spnhbm::rpc
