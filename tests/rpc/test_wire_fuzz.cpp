// Wire-protocol fuzz: a live RpcServer is fed >= 10k seeded malformed
// frames — truncations, bad magic, oversized length claims, random bit
// flips, random bodies under valid headers (all v4 frame types, REQUEST2
// included), and structurally valid REQUEST2 frames carrying broken v4
// fields or malformed CSR sparse streams — and must neither crash nor
// wedge: every violating connection is closed cleanly, the conservation
// identities keep holding, and a well-formed client still gets correct
// results afterwards.
//
// Shutdown frames (type 4) are explicitly excluded from the generator:
// a valid remote shutdown is a feature, not a malformation, and firing
// one mid-fuzz would end the test early by design.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "../engine/mock_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/rpc/client.hpp"
#include "spnhbm/rpc/server.hpp"
#include "spnhbm/rpc/socket.hpp"
#include "spnhbm/rpc/wire.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::rpc {
namespace {

using engine_test::MockEngine;
using engine_test::expect_encoded;
using engine_test::make_request;

constexpr std::size_t kFuzzFrames = 10'000;
constexpr std::uint8_t kShutdownType = 4;

std::vector<std::uint8_t> valid_request_wire(Rng& rng) {
  RequestFrame request;
  request.request_id = rng.next_u64();
  request.model = "mock@1";
  request.samples = make_request(1 + rng.next_below(3),
                                 static_cast<std::uint8_t>(rng.next_u64()));
  if (rng.next_below(4) == 0) request.idempotency_key = rng.next_u64() | 1;
  return encode_frame(encode_request(request));
}

/// A structurally valid REQUEST2 frame whose v4 fields or sparse payload
/// are wrong: bogus query-kind/encoding bytes, sample-count lies, and
/// CSR streams that are truncated, out of range, duplicated or
/// non-increasing. The server must answer with a typed rejection or a
/// clean close — never a crash and never an engine fault.
std::vector<std::uint8_t> malformed_request2_wire(Rng& rng) {
  RequestFrame request;
  request.request_id = rng.next_u64();
  request.model = "mock@1";
  request.query_kind = static_cast<std::uint8_t>(rng.next_below(3));
  request.encoding = kEncodingSparse;
  request.sample_count = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  switch (rng.next_below(5)) {
    case 0:  // truncated stream: count promises more pairs than sent
      request.samples = {5, 0, 1, 0, 9};
      break;
    case 1:  // index out of the mock's 4-feature range
      request.samples = {1, 0, 200, 0, 9};
      break;
    case 2:  // duplicate index
      request.samples = {2, 0, 1, 0, 3, 1, 0, 4};
      break;
    case 3:  // decreasing indices
      request.samples = {2, 0, 3, 0, 3, 1, 0, 4};
      break;
    default:  // random bytes as a stream
      request.samples.resize(1 + rng.next_below(32));
      for (auto& b : request.samples) {
        b = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
  }
  std::vector<std::uint8_t> wire = encode_frame(encode_request2(request));
  // In a third of the frames, also corrupt the query-kind/encoding bytes
  // in place (the encoder refuses to produce them, the decoder must not).
  if (rng.next_below(3) == 0) {
    const std::size_t query_offset =
        kFrameHeaderBytes + 8 + 2 + request.model.size() + 8;
    wire[query_offset + rng.next_below(2)] =
        static_cast<std::uint8_t>(3 + rng.next_below(250));
  }
  return wire;
}

void put_u32(std::vector<std::uint8_t>& bytes, std::size_t at,
             std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::vector<std::uint8_t> malformed_frame(Rng& rng) {
  std::vector<std::uint8_t> wire;
  switch (rng.next_below(7)) {
    case 0: {  // pure garbage, no header structure at all
      wire.resize(1 + rng.next_below(64));
      for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_u64());
      break;
    }
    case 1: {  // valid request with 1..8 random bit flips
      wire = valid_request_wire(rng);
      const std::size_t flips = 1 + rng.next_below(8);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t at = rng.next_below(wire.size());
        wire[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      break;
    }
    case 2: {  // truncation: a valid frame cut mid-body
      wire = valid_request_wire(rng);
      wire.resize(1 + rng.next_below(wire.size() - 1));
      break;
    }
    case 3: {  // bad magic
      wire = valid_request_wire(rng);
      put_u32(wire, 0, static_cast<std::uint32_t>(rng.next_u64()));
      break;
    }
    case 4: {  // oversized length claim (kMaxBodyBytes+1 .. u32 max)
      wire = valid_request_wire(rng);
      put_u32(wire, 5,
              kMaxBodyBytes + 1 +
                  static_cast<std::uint32_t>(
                      rng.next_below(0xFFFFFFFFu - kMaxBodyBytes - 1)));
      break;
    }
    case 5: {  // valid header (any v4 frame type), random body bytes
      const std::uint32_t body_len = 1 + rng.next_below(128);
      wire.resize(kFrameHeaderBytes + body_len);
      put_u32(wire, 0, kFrameMagic);
      wire[4] = static_cast<std::uint8_t>(1 + rng.next_below(7));
      put_u32(wire, 5, body_len);
      for (std::size_t at = kFrameHeaderBytes; at < wire.size(); ++at) {
        wire[at] = static_cast<std::uint8_t>(rng.next_u64());
      }
      break;
    }
    default: {  // structurally valid REQUEST2 with broken v4/sparse content
      wire = malformed_request2_wire(rng);
      break;
    }
  }
  // Never emit an intact shutdown control frame (see header comment).
  if (wire.size() >= kFrameHeaderBytes && wire[4] == kShutdownType) {
    wire[4] = 99;
  }
  return wire;
}

TEST(WireFuzz, TenThousandMalformedFramesNeverKillTheServer) {
  engine::ServerConfig config;
  config.batch_samples = 8;
  config.max_latency = std::chrono::microseconds(200);
  engine::InferenceServer server(config);
  server.register_engine(std::make_shared<MockEngine>());
  server.start();

  RpcServerConfig rpc_config;
  rpc_config.port = 0;
  rpc_config.max_connections = 64;
  RpcServer front(server, rpc_config);
  front.start();
  const std::uint16_t port = front.port();

  // 8 sender threads, each with its own deterministically seeded
  // generator stream: the frame *set* is seed-stable even though the
  // arrival interleaving is not (the server must survive any order).
  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> sent{0};
  auto hammer = [&](std::size_t thread_index) {
    Rng rng(20260809 + thread_index);
    for (std::size_t i = 0; i < kFuzzFrames / kThreads; ++i) {
      const std::vector<std::uint8_t> wire = malformed_frame(rng);
      try {
        Socket socket = Socket::connect("127.0.0.1", port);
        socket.send_all(wire.data(), wire.size());
        sent.fetch_add(1, std::memory_order_relaxed);
        // Read the HELLO header before closing: this paces every sender
        // to the server's real accept rate. Closing blind lets the
        // senders run ~64 connects ahead of the accept loop, overflow
        // the listen backlog and stall a full SYN-retransmit second.
        std::uint8_t hello_header[kFrameHeaderBytes];
        (void)socket.recv_exact(hello_header, sizeof(hello_header));
      } catch (const RpcError&) {
        // A reset instead of a HELLO (the reader may kill the socket
        // before the writer speaks) is not a protocol bug; keep
        // hammering.
      }
    }
  };
  std::vector<std::thread> senders;
  for (std::size_t t = 0; t < kThreads; ++t) senders.emplace_back(hammer, t);
  for (auto& thread : senders) thread.join();
  EXPECT_GT(sent.load(), kFuzzFrames * 9 / 10) << "connect loop mostly failed";

  // The server must still speak the protocol perfectly: a well-formed
  // client round-trips a request with byte-exact results.
  auto client = RpcClient::connect("127.0.0.1", port);
  const auto payload = make_request(2, 7);
  expect_encoded(payload, client->submit("mock@1", payload).get());
  client.reset();

  // Every fuzz connection must drain (closed on violation), and the
  // books must balance: decode failures are protocol violations, not
  // requests, so received == accepted + rejected + shed + duplicates
  // still holds over whatever subset parsed as REQUEST frames.
  for (int i = 0; i < 500 && front.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(front.active_connections(), 0u);
  const RpcServerStats stats = front.stats();
  EXPECT_TRUE(stats.conserved()) << stats.describe();
  EXPECT_EQ(stats.completed + stats.failed, stats.accepted);

  front.stop();
  server.stop();
  EXPECT_EQ(server.outstanding_samples(), 0u);
}

}  // namespace
}  // namespace spnhbm::rpc
