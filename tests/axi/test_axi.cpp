#include <gtest/gtest.h>

#include <vector>

#include "spnhbm/axi/smart_connect.hpp"
#include "spnhbm/hbm/hbm.hpp"
#include "spnhbm/sim/process.hpp"

namespace spnhbm::axi {
namespace {

/// Port that records bursts and charges a fixed token rate.
class RecordingPort final : public AxiPort {
 public:
  RecordingPort(sim::Scheduler& scheduler, Picoseconds per_byte)
      : scheduler_(scheduler), per_byte_(per_byte) {}

  sim::Task<void> transfer(BurstRequest request) override {
    bursts.push_back(request);
    co_await sim::delay(scheduler_, per_byte_ * request.bytes);
  }
  std::uint32_t max_burst_bytes() const override { return 4096; }

  std::vector<BurstRequest> bursts;

 private:
  sim::Scheduler& scheduler_;
  Picoseconds per_byte_;
};

TEST(LinearTransfer, SplitsIntoMaximalBursts) {
  sim::Scheduler scheduler;
  RecordingPort port(scheduler, 1);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await linear_transfer(port, 0x1000, 10'000, /*is_write=*/true);
  });
  scheduler.run();
  runner.check();
  ASSERT_EQ(port.bursts.size(), 3u);
  EXPECT_EQ(port.bursts[0].bytes, 4096u);
  EXPECT_EQ(port.bursts[0].address, 0x1000u);
  EXPECT_EQ(port.bursts[1].address, 0x2000u);
  EXPECT_EQ(port.bursts[2].bytes, 10'000u - 2u * 4096u);
  EXPECT_TRUE(port.bursts[2].is_write);
  EXPECT_EQ(scheduler.now(), 10'000);
}

TEST(SmartConnect, AddsLatencyOnly) {
  sim::Scheduler scheduler;
  RecordingPort port(scheduler, 1);
  SmartConnectConfig config;
  config.conversion_latency = nanoseconds(55);
  SmartConnect connect(scheduler, port, config);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await connect.transfer(BurstRequest{0, 1024, false});
  });
  scheduler.run();
  runner.check();
  EXPECT_EQ(scheduler.now(), nanoseconds(55) + 1024);
  ASSERT_EQ(port.bursts.size(), 1u);
}

TEST(SmartConnect, RespectsDownstreamBurstCap) {
  sim::Scheduler scheduler;
  RecordingPort port(scheduler, 1);
  SmartConnectConfig config;
  config.max_burst_bytes = 1 << 20;  // asks for more than downstream allows
  SmartConnect connect(scheduler, port, config);
  EXPECT_EQ(connect.max_burst_bytes(), 4096u);
}

TEST(RegisterSlice, AddsOneStage) {
  sim::Scheduler scheduler;
  RecordingPort port(scheduler, 1);
  RegisterSlice slice(scheduler, port);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await slice.transfer(BurstRequest{0, 64, false});
  });
  scheduler.run();
  runner.check();
  EXPECT_EQ(scheduler.now(), nanoseconds(5) + 64);
}

// The paper's Fig. 2 equivalence: a PE at 450 MHz natively attached vs one
// at 225 MHz with doubled width behind a SmartConnect achieve the same
// sustained throughput on the same HBM channel.
TEST(SmartConnect, HalfClockDoubleWidthMatchesNativeThroughput) {
  const auto measure = [](bool use_smart_connect) {
    sim::Scheduler scheduler;
    hbm::HbmChannel channel(scheduler);
    SmartConnect connect(scheduler, channel.port());
    AxiPort& port =
        use_smart_connect ? static_cast<AxiPort&>(connect)
                          : static_cast<AxiPort&>(channel.port());
    sim::ProcessRunner runner(scheduler);
    // Two outstanding burst streams hide the conversion latency, like the
    // RTL traffic generator's multiple outstanding transactions.
    for (int stream = 0; stream < 2; ++stream) {
      runner.spawn([&port, stream]() -> sim::Process {
        const std::uint64_t half = 8 * kMiB;
        co_await linear_transfer(port, stream * half, half, false);
      });
    }
    scheduler.run();
    runner.check();
    return static_cast<double>(16 * kMiB) / to_seconds(scheduler.now());
  };
  const double native = measure(false);
  const double converted = measure(true);
  EXPECT_NEAR(converted / native, 1.0, 0.02);
}

}  // namespace
}  // namespace spnhbm::axi
