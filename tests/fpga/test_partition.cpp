#include "spnhbm/fpga/partition.hpp"

#include <gtest/gtest.h>

#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::fpga {
namespace {

compiler::DatapathModule compile_nips(std::size_t variables) {
  const auto model = workload::make_nips_model(variables);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  return compiler::compile_spn(model.spn, *backend);
}

TEST(ResourceDeficits, ReportRequiredVsAvailablePerResource) {
  const ResourceVector required{100, 10, 300, 50, 40};
  const ResourceVector budget{80, 20, 300, 10, 50};
  const auto deficits = resource_deficits(required, budget);
  ASSERT_EQ(deficits.size(), 2u);
  EXPECT_EQ(deficits[0].resource, "kLUT logic");
  EXPECT_DOUBLE_EQ(deficits[0].required, 100);
  EXPECT_DOUBLE_EQ(deficits[0].available, 80);
  EXPECT_DOUBLE_EQ(deficits[0].deficit(), 20);
  EXPECT_EQ(deficits[1].resource, "BRAM36");
  EXPECT_NE(deficits[0].describe().find("required vs"), std::string::npos);
}

TEST(ResourceDeficits, FittingDesignHasNone) {
  const ResourceVector fits{1, 2, 3, 4, 5};
  const ResourceVector budget{10, 10, 10, 10, 10};
  EXPECT_TRUE(resource_deficits(fits, budget).empty());
}

TEST(CheckPlacement, FailureCarriesStructuredDeficits) {
  const auto module = compile_nips(10);
  DesignSpec spec;
  spec.pe_count = cal::kMaxRoutablePes + 4;  // beyond the replication limit
  try {
    check_placement(module, arith::FormatKind::kCfp, spec);
    FAIL() << "expected PlacementDeficitError";
  } catch (const PlacementDeficitError& e) {
    ASSERT_FALSE(e.deficits().empty());
    bool saw_pe_slots = false;
    for (const auto& deficit : e.deficits()) {
      if (deficit.resource == "PE slots") {
        saw_pe_slots = true;
        EXPECT_DOUBLE_EQ(deficit.required, spec.pe_count);
        EXPECT_DOUBLE_EQ(deficit.available, cal::kMaxRoutablePes);
      }
    }
    EXPECT_TRUE(saw_pe_slots);
    EXPECT_NE(std::string(e.what()).find("PE slots"), std::string::npos);
  }
}

TEST(PartitionTable, ReservesDisjointChannelsAndSlots) {
  const auto module = compile_nips(10);
  PartitionTable table;
  const auto& a = table.reserve("a", module, arith::FormatKind::kCfp, 2);
  const auto& b = table.reserve("b", module, arith::FormatKind::kCfp, 3);
  EXPECT_EQ(a.pe_slots, 2);
  ASSERT_EQ(a.hbm_channels.size(), 2u);
  ASSERT_EQ(b.hbm_channels.size(), 3u);
  // Lowest free channels, disjoint between partitions.
  EXPECT_EQ(a.hbm_channels, (std::vector<int>{0, 1}));
  EXPECT_EQ(b.hbm_channels, (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(table.free_pe_slots(), cal::kMaxRoutablePes - 5);
  EXPECT_EQ(table.free_channels(), 32 - 5);
  EXPECT_TRUE(table.contains("a"));
  EXPECT_FALSE(table.contains("c"));
}

TEST(PartitionTable, ReleaseFreesAndChannelsAreReassigned) {
  const auto module = compile_nips(10);
  PartitionTable table;
  table.reserve("a", module, arith::FormatKind::kCfp, 2);
  table.reserve("b", module, arith::FormatKind::kCfp, 2);
  table.release("a");
  EXPECT_FALSE(table.contains("a"));
  // The freed low channels go to the next tenant.
  const auto& c = table.reserve("c", module, arith::FormatKind::kCfp, 2);
  EXPECT_EQ(c.hbm_channels, (std::vector<int>{0, 1}));
  EXPECT_THROW(table.release("a"), PlacementError);
  EXPECT_THROW(table.at("nope"), PlacementError);
}

TEST(PartitionTable, OversubscribedPeSlotsReportDeficit) {
  const auto module = compile_nips(10);
  PartitionTable table;
  table.reserve("a", module, arith::FormatKind::kCfp,
                cal::kMaxRoutablePes - 1);
  try {
    table.reserve("b", module, arith::FormatKind::kCfp, 2);
    FAIL() << "expected PlacementDeficitError";
  } catch (const PlacementDeficitError& e) {
    ASSERT_FALSE(e.deficits().empty());
    EXPECT_EQ(e.deficits().front().resource, "PE slots");
    EXPECT_DOUBLE_EQ(e.deficits().front().required, cal::kMaxRoutablePes + 1);
    EXPECT_DOUBLE_EQ(e.deficits().front().available, cal::kMaxRoutablePes);
  }
  // The failed reserve must not leak channels or slots.
  EXPECT_EQ(table.free_pe_slots(), 1);
  table.reserve("b", module, arith::FormatKind::kCfp, 1);  // exact fit now
}

TEST(PartitionTable, ZeroChannelBudgetRejectsEveryTenant) {
  const auto module = compile_nips(10);
  PartitionBudget budget;
  budget.hbm_channels = 0;
  PartitionTable table(budget);
  try {
    table.reserve("a", module, arith::FormatKind::kCfp, 1);
    FAIL() << "expected PlacementDeficitError";
  } catch (const PlacementDeficitError& e) {
    bool saw_channels = false;
    for (const auto& deficit : e.deficits()) {
      if (deficit.resource == "HBM channels") {
        saw_channels = true;
        EXPECT_DOUBLE_EQ(deficit.required, 1);
        EXPECT_DOUBLE_EQ(deficit.available, 0);
      }
    }
    EXPECT_TRUE(saw_channels);
  }
  EXPECT_EQ(table.size(), 0u);
}

TEST(PartitionTable, ExactFitFillsEveryPeSlot) {
  const auto module = compile_nips(10);
  PartitionTable table;
  // NIPS10 PEs are small: the replication limit binds, not the fabric.
  for (int i = 0; i < cal::kMaxRoutablePes; ++i) {
    table.reserve("t" + std::to_string(i), module, arith::FormatKind::kCfp, 1);
  }
  EXPECT_EQ(table.free_pe_slots(), 0);
  EXPECT_THROW(
      table.reserve("over", module, arith::FormatKind::kCfp, 1),
      PlacementDeficitError);
  table.release("t0");
  table.reserve("again", module, arith::FormatKind::kCfp, 1);  // refills
  EXPECT_EQ(table.free_pe_slots(), 0);
}

TEST(PartitionTable, FabricBudgetBindsBeforeSlotsForLargeTenants) {
  // A partition table with a tiny utilisation cap: even one small tenant
  // exceeds the fabric, and the error names the over-budget resources.
  const auto module = compile_nips(20);
  PartitionBudget budget;
  budget.utilisation = 0.12;  // shell alone nearly fills this
  PartitionTable table(budget);
  try {
    table.reserve("big", module, arith::FormatKind::kCfp, 4);
    FAIL() << "expected PlacementDeficitError";
  } catch (const PlacementDeficitError& e) {
    ASSERT_FALSE(e.deficits().empty());
    for (const auto& deficit : e.deficits()) {
      EXPECT_GT(deficit.required, deficit.available);
    }
  }
}

TEST(PartitionTable, BitstreamFractionIsPeSlotShare) {
  const auto module = compile_nips(10);
  PartitionTable table;
  table.reserve("a", module, arith::FormatKind::kCfp, 2);
  EXPECT_DOUBLE_EQ(table.bitstream_fraction("a"),
                   2.0 / cal::kMaxRoutablePes);
}

TEST(PartitionTable, DescribeListsPartitions) {
  const auto module = compile_nips(10);
  PartitionTable table;
  table.reserve("alpha", module, arith::FormatKind::kCfp, 1);
  const std::string text = table.describe();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("PE slots free"), std::string::npos);
}

TEST(PartitionTable, TableISupportsFourNips80Tenants) {
  // The motivating headline: Table I leaves room for >= 4 NIPS80
  // datapaths next to the shared shell (the paper routed 8).
  const auto module = compile_nips(80);
  PartitionTable table;
  for (int i = 0; i < 4; ++i) {
    table.reserve("nips80-" + std::to_string(i), module,
                  arith::FormatKind::kCfp, 1);
  }
  EXPECT_EQ(table.size(), 4u);
  EXPECT_TRUE(
      resource_deficits(table.reserved(), table.routable_budget()).empty());
}

}  // namespace
}  // namespace spnhbm::fpga
