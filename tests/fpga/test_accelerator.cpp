#include "spnhbm/fpga/accelerator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>

#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/text_format.hpp"
#include "spnhbm/util/rng.hpp"

namespace spnhbm::fpga {
namespace {

spn::Spn two_var_spn() {
  return spn::parse_spn(R"(
    Sum(0.3*Product(Histogram(V0|[0,64,128,256];[0.0078125,0.0078125,0.0])
                  * Histogram(V1|[0,128,256];[0.0078125,0.0]))
      + 0.7*Product(Histogram(V0|[0,64,256];[0.0078125,0.00260416666666666652])
                  * Histogram(V1|[0,128,256];[0.005,0.0028125])))
  )");
}

struct Harness {
  sim::Scheduler scheduler;
  sim::ProcessRunner runner{scheduler};
  hbm::HbmChannel channel{scheduler};
  spn::Spn spn = two_var_spn();
  std::unique_ptr<arith::ArithBackend> backend =
      arith::make_cfp_backend(arith::paper_cfp_format());
  compiler::DatapathModule module = compiler::compile_spn(spn, *backend);
  SpnAccelerator accelerator{runner, module, *backend, channel.port(),
                             &channel};
};

TEST(Accelerator, ConfigQueryMode) {
  Harness h;
  h.accelerator.write_register(
      Reg::kSampleCount,
      static_cast<std::uint64_t>(ConfigQuery::kInputFeatures));
  h.accelerator.write_register(Reg::kControl, 2);
  EXPECT_EQ(h.accelerator.read_register(Reg::kReturnValue), 2u);

  h.accelerator.write_register(
      Reg::kSampleCount,
      static_cast<std::uint64_t>(ConfigQuery::kPipelineDepth));
  h.accelerator.write_register(Reg::kControl, 2);
  EXPECT_EQ(h.accelerator.read_register(Reg::kReturnValue),
            h.module.pipeline_depth());

  h.accelerator.write_register(
      Reg::kSampleCount, static_cast<std::uint64_t>(ConfigQuery::kClockHz));
  h.accelerator.write_register(Reg::kControl, 2);
  EXPECT_EQ(h.accelerator.read_register(Reg::kReturnValue), 225'000'000u);
}

TEST(Accelerator, RegisterFileReadWrite) {
  Harness h;
  h.accelerator.write_register(Reg::kInputAddress, 0x1234'5678'9ABCull);
  EXPECT_EQ(h.accelerator.read_register(Reg::kInputAddress),
            0x1234'5678'9ABCull);
  EXPECT_THROW(h.accelerator.write_register(Reg::kStatus, 1),
               RuntimeApiError);
  EXPECT_THROW(h.accelerator.write_register(Reg::kControl, 99),
               RuntimeApiError);
}

TEST(Accelerator, ComputesRealResults) {
  Harness h;
  // Write 100 samples into channel memory, run, read results back.
  const std::uint64_t samples = 100;
  Rng rng(42);
  std::vector<std::uint8_t> inputs(samples * 2);
  for (auto& b : inputs) b = static_cast<std::uint8_t>(rng.next_below(256));
  h.channel.write_backdoor(0, inputs);

  h.accelerator.write_register(Reg::kInputAddress, 0);
  h.accelerator.write_register(Reg::kOutputAddress, 1 * kMiB);
  h.accelerator.write_register(Reg::kSampleCount, samples);
  h.accelerator.write_register(Reg::kControl, 1);
  EXPECT_TRUE(h.accelerator.busy());
  h.scheduler.run();
  h.runner.check();
  EXPECT_FALSE(h.accelerator.busy());
  EXPECT_EQ(h.accelerator.read_register(Reg::kStatus), 2u);  // done

  std::vector<std::uint8_t> raw(samples * 8);
  h.channel.read_backdoor(1 * kMiB, raw);
  spn::Evaluator reference(h.spn);
  for (std::uint64_t s = 0; s < samples; ++s) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, raw.data() + s * 8, 8);
    const double got = std::bit_cast<double>(bits);
    const double want = reference.evaluate_bytes(
        std::span<const std::uint8_t>(inputs).subspan(s * 2, 2));
    if (want > 0) {
      EXPECT_NEAR(got / want, 1.0, 1e-4) << "sample " << s;
    } else {
      EXPECT_EQ(got, 0.0);
    }
  }
}

TEST(Accelerator, SteadyStateThroughputIsOneSamplePerCycle) {
  Harness h;
  AcceleratorConfig config;
  config.compute_results = false;
  SpnAccelerator accel(h.runner, h.module, *h.backend, h.channel.port(),
                       nullptr, config);
  const std::uint64_t samples = 1'000'000;
  accel.write_register(Reg::kInputAddress, 0);
  accel.write_register(Reg::kOutputAddress, 64 * kMiB);
  accel.write_register(Reg::kSampleCount, samples);
  const Picoseconds start = h.scheduler.now();
  accel.write_register(Reg::kControl, 1);
  h.scheduler.run();
  h.runner.check();
  const double seconds = to_seconds(h.scheduler.now() - start);
  const double rate = static_cast<double>(samples) / seconds;
  // II=1 at 225 MHz minus pipeline fill and burst handshakes: within a few
  // percent of 225 Msamples/s for a 2-byte-per-sample model.
  EXPECT_GT(rate, 0.9 * 225e6);
  EXPECT_LT(rate, 225e6 * 1.001);
  EXPECT_EQ(accel.samples_processed(), samples);
}

TEST(Accelerator, RejectsDoubleStart) {
  Harness h;
  h.accelerator.write_register(Reg::kSampleCount, 64);
  h.accelerator.write_register(Reg::kControl, 1);
  EXPECT_THROW(h.accelerator.write_register(Reg::kControl, 1),
               RuntimeApiError);
  h.scheduler.run();
  h.runner.check();
}

TEST(Accelerator, BackToBackJobs) {
  Harness h;
  AcceleratorConfig config;
  config.compute_results = false;
  SpnAccelerator accel(h.runner, h.module, *h.backend, h.channel.port(),
                       nullptr, config);
  for (int job = 0; job < 3; ++job) {
    accel.write_register(Reg::kInputAddress, 0);
    accel.write_register(Reg::kOutputAddress, 64 * kMiB);
    accel.write_register(Reg::kSampleCount, 10'000);
    accel.write_register(Reg::kControl, 1);
    h.scheduler.run();
    h.runner.check();
    EXPECT_FALSE(accel.busy());
  }
  EXPECT_EQ(accel.samples_processed(), 30'000u);
}

TEST(Accelerator, WaitDoneReturnsImmediatelyWhenIdle) {
  Harness h;
  bool finished = false;
  h.runner.spawn([&]() -> sim::Process {
    co_await h.accelerator.wait_done();
    finished = true;
  });
  h.scheduler.run();
  h.runner.check();
  EXPECT_TRUE(finished);
}

TEST(Accelerator, MemoryBandwidthMatchesPaperArithmetic) {
  // NIPS10-shaped check scaled down: the paper derives 2.23 GiB/s of
  // channel traffic for 133.1 Msamples/s at 18 B/sample. At our II=1 rate,
  // traffic = rate x (features + 8).
  Harness h;
  AcceleratorConfig config;
  config.compute_results = false;
  SpnAccelerator accel(h.runner, h.module, *h.backend, h.channel.port(),
                       nullptr, config);
  const std::uint64_t samples = 500'000;
  accel.write_register(Reg::kOutputAddress, 64 * kMiB);
  accel.write_register(Reg::kSampleCount, samples);
  accel.write_register(Reg::kControl, 1);
  h.scheduler.run();
  h.runner.check();
  EXPECT_EQ(h.channel.bytes_read(), samples * 2);
  EXPECT_EQ(h.channel.bytes_written(), samples * 8);
}

}  // namespace
}  // namespace spnhbm::fpga
