// Parameterised sweep of the accelerator's timing model: for synthetic
// datapaths across feature widths, the steady-state rate must match the
// analytic bound  min(clock/II, channel_bw / bytes_per_sample)  within a
// few percent — the invariant every paper figure builds on.
#include <gtest/gtest.h>

#include "spnhbm/fpga/accelerator.hpp"
#include "spnhbm/spn/random_spn.hpp"

namespace spnhbm::fpga {
namespace {

struct SweepParam {
  std::size_t features;
  std::uint32_t burst_bytes;
};

class AcceleratorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AcceleratorSweep, SteadyStateMatchesAnalyticBound) {
  const auto param = GetParam();
  spn::RandomSpnConfig spn_config;
  spn_config.variables = param.features;
  spn_config.seed = 17 + param.features;
  const spn::Spn spn = spn::make_random_spn(spn_config);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(spn, *backend);

  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  hbm::HbmChannel channel(scheduler);
  AcceleratorConfig config;
  config.compute_results = false;
  config.load_burst_bytes = param.burst_bytes;
  SpnAccelerator accelerator(runner, module, *backend, channel.port(),
                             nullptr, config);

  // Input region must fit below the output region in the 256 MiB channel.
  const std::uint64_t samples = std::min<std::uint64_t>(
      2'000'000, 192 * kMiB / param.features);
  accelerator.write_register(Reg::kOutputAddress, 224 * kMiB);
  accelerator.write_register(Reg::kSampleCount, samples);
  const Picoseconds start = scheduler.now();
  accelerator.write_register(Reg::kControl, 1);
  scheduler.run();
  runner.check();
  const double rate =
      static_cast<double>(samples) / to_seconds(scheduler.now() - start);

  // Analytic bound: II=1 at the PE clock, or the channel's practical
  // bandwidth over (features + 8) bytes per sample — whichever is lower.
  const double clock_bound = config.clock.frequency_hz();
  // 4 KiB bursts with rare read/write turnarounds: ~93% of the 14.4 GB/s
  // raw channel rate.
  const double channel_gibps = 12.45;
  const double memory_bound =
      channel_gibps * static_cast<double>(kGiB) /
      static_cast<double>(param.features + 8);
  const double bound = std::min(clock_bound, memory_bound);
  EXPECT_LT(rate, bound * 1.03) << "features=" << param.features;
  EXPECT_GT(rate, bound * 0.85) << "features=" << param.features;
}

INSTANTIATE_TEST_SUITE_P(
    FeatureWidths, AcceleratorSweep,
    ::testing::Values(SweepParam{2, 4096}, SweepParam{10, 4096},
                      SweepParam{40, 4096}, SweepParam{80, 4096},
                      SweepParam{200, 4096}, SweepParam{10, 1024},
                      SweepParam{80, 1024}),
    [](const auto& info) {
      std::string name = "f";
      name += std::to_string(info.param.features);
      name += "_b";
      name += std::to_string(info.param.burst_bytes);
      return name;
    });

TEST(AcceleratorSweep, MemoryBoundKicksInForWideSamples) {
  // 200-byte samples at 225 MHz would need 46.8 GB/s — far beyond one
  // channel, so the accelerator must be memory-bound, not clock-bound.
  spn::RandomSpnConfig spn_config;
  spn_config.variables = 200;
  spn_config.seed = 4;
  const spn::Spn spn = spn::make_random_spn(spn_config);
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(spn, *backend);

  sim::Scheduler scheduler;
  sim::ProcessRunner runner(scheduler);
  hbm::HbmChannel channel(scheduler);
  AcceleratorConfig config;
  config.compute_results = false;
  SpnAccelerator accelerator(runner, module, *backend, channel.port(),
                             nullptr, config);
  accelerator.write_register(Reg::kOutputAddress, 192 * kMiB);
  accelerator.write_register(Reg::kSampleCount, 1'000'000);
  accelerator.write_register(Reg::kControl, 1);
  scheduler.run();
  runner.check();
  const double rate = 1e6 / to_seconds(scheduler.now());
  EXPECT_LT(rate, 0.35 * config.clock.frequency_hz());
}

}  // namespace
}  // namespace spnhbm::fpga
