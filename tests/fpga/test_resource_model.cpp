#include "spnhbm/fpga/resource_model.hpp"

#include <gtest/gtest.h>

#include "spnhbm/workload/model_zoo.hpp"

namespace spnhbm::fpga {
namespace {

compiler::DatapathModule compile_nips(std::size_t variables,
                                      arith::FormatKind format) {
  const auto model = workload::make_nips_model(variables);
  const auto backend = format == arith::FormatKind::kFloat64
                           ? arith::make_float64_backend()
                           : arith::make_cfp_backend(arith::paper_cfp_format());
  return compiler::compile_spn(model.spn, *backend);
}

TEST(ResourceVector, Arithmetic) {
  const ResourceVector a{10, 20, 30, 40, 50};
  const ResourceVector b{1, 2, 3, 4, 5};
  const ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.kluts_logic, 11);
  EXPECT_DOUBLE_EQ(sum.dsp, 55);
  const ResourceVector scaled = b * 4.0;
  EXPECT_DOUBLE_EQ(scaled.kregs, 12);
  EXPECT_TRUE(b.fits_within(a));
  EXPECT_FALSE(a.fits_within(b));
}

TEST(ResourceModel, BudgetsMatchTableIAvailableRow) {
  EXPECT_DOUBLE_EQ(vu37p_budget().kluts_logic, 1304.0);
  EXPECT_DOUBLE_EQ(vu37p_budget().dsp, 9024.0);
  EXPECT_DOUBLE_EQ(f1_vu9p_budget().kluts_logic, 1182.0);
  EXPECT_DOUBLE_EQ(f1_vu9p_budget().dsp, 6840.0);
}

TEST(ResourceModel, NewArchitectureUsesFarFewerResourcesThanPriorWork) {
  // The headline of Table I: CFP datapaths + hardened HBM controllers cut
  // LUTs/DSPs/registers massively vs float64 + soft DDR controllers.
  const auto module_new = compile_nips(10, arith::FormatKind::kCfp);
  const auto module_old = compile_nips(10, arith::FormatKind::kFloat64);
  DesignSpec spec_new{Platform::kHbmXupVvh, 4, 1};
  DesignSpec spec_old{Platform::kF1, 4, 4};
  const auto new_design =
      estimate_design(module_new, arith::FormatKind::kCfp, spec_new);
  const auto old_design =
      estimate_design(module_old, arith::FormatKind::kFloat64, spec_old);
  EXPECT_LT(new_design.dsp, 0.5 * old_design.dsp);
  EXPECT_LT(new_design.kluts_logic, 0.7 * old_design.kluts_logic);
  EXPECT_LT(new_design.kregs, 0.7 * old_design.kregs);
}

TEST(ResourceModel, FourPeNips10LandsNearTableI) {
  // Paper Table I (New, NIPS10, 4 PEs): 169.8 kLUT logic, 66.9 kLUT mem,
  // 275.1 kRegs, 122 BRAM, 200 DSP. The learned structures differ from the
  // unpublished originals, so we check a +-35% corridor (see
  // EXPERIMENTS.md for exact numbers).
  const auto module = compile_nips(10, arith::FormatKind::kCfp);
  const auto design = estimate_design(module, arith::FormatKind::kCfp,
                                      DesignSpec{Platform::kHbmXupVvh, 4, 1});
  EXPECT_NEAR(design.kluts_logic, 169.8, 169.8 * 0.35);
  EXPECT_NEAR(design.kluts_mem, 66.9, 66.9 * 0.35);
  EXPECT_NEAR(design.kregs, 275.1, 275.1 * 0.35);
  EXPECT_NEAR(design.bram36, 122.0, 122.0 * 0.35);
  EXPECT_NEAR(design.dsp, 200.0, 200.0 * 0.35);
}

TEST(ResourceModel, ResourceUseGrowsWithModelSize) {
  const auto small = estimate_pe(compile_nips(10, arith::FormatKind::kCfp),
                                 arith::FormatKind::kCfp);
  const auto large = estimate_pe(compile_nips(40, arith::FormatKind::kCfp),
                                 arith::FormatKind::kCfp);
  EXPECT_GT(large.dsp, 2.0 * small.dsp);
  EXPECT_GT(large.kregs, small.kregs);
}

TEST(ResourceModel, EightNips80PesFitOnVu37p) {
  // Paper §V-A: "fit up to eight NIPS80 accelerators on the FPGA compared
  // to only two in [8]".
  const auto module = compile_nips(80, arith::FormatKind::kCfp);
  EXPECT_EQ(max_placeable_pes(module, arith::FormatKind::kCfp,
                              Platform::kHbmXupVvh),
            8);
}

TEST(ResourceModel, PriorWorkNips80LimitedOnF1) {
  // [8] could not fit 4 NIPS80 accelerators with 4 controllers on F1.
  const auto module = compile_nips(80, arith::FormatKind::kFloat64);
  DesignSpec four{Platform::kF1, 4, 4};
  EXPECT_THROW(check_placement(module, arith::FormatKind::kFloat64, four),
               PlacementError);
  DesignSpec two{Platform::kF1, 2, 2};
  EXPECT_NO_THROW(check_placement(module, arith::FormatKind::kFloat64, two));
}

TEST(ResourceModel, RoutingCapLimitsReplication) {
  const auto module = compile_nips(10, arith::FormatKind::kCfp);
  DesignSpec spec{Platform::kHbmXupVvh, cal::kMaxRoutablePes + 1, 1};
  EXPECT_THROW(check_placement(module, arith::FormatKind::kCfp, spec),
               PlacementError);
}

TEST(ResourceModel, HbmPlatformLimitedTo32Channels) {
  const auto module = compile_nips(10, arith::FormatKind::kCfp);
  DesignSpec spec{Platform::kHbmXupVvh, 33, 1};
  EXPECT_THROW(check_placement(module, arith::FormatKind::kCfp, spec),
               std::exception);
}

TEST(ResourceModel, F1ControllerCountValidated) {
  const auto module = compile_nips(10, arith::FormatKind::kFloat64);
  DesignSpec spec{Platform::kF1, 2, 5};
  EXPECT_THROW(estimate_design(module, arith::FormatKind::kFloat64, spec),
               std::logic_error);
}

TEST(ResourceModel, DescribeIsHumanReadable) {
  const ResourceVector v{1.5, 2.5, 3.5, 4, 5};
  const auto text = v.describe();
  EXPECT_NE(text.find("kLUT logic"), std::string::npos);
  EXPECT_NE(text.find("DSP"), std::string::npos);
}

}  // namespace
}  // namespace spnhbm::fpga
