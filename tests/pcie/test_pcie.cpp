#include "spnhbm/pcie/pcie.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "spnhbm/fault/fault.hpp"
#include "spnhbm/sim/process.hpp"

namespace spnhbm::pcie {
namespace {

TEST(Generations, MatchPaperNumbers) {
  const auto gen3 = pcie_generation(3);
  EXPECT_NEAR(gen3.theoretical.as_gb_per_second(), 15.754, 1e-3);
  EXPECT_NEAR(gen3.practical.as_gib_per_second(), 11.6415, 1e-3);
  EXPECT_NEAR(pcie_generation(4).practical.as_gib_per_second(), 23.0, 1e-9);
  EXPECT_NEAR(pcie_generation(5).practical.as_gib_per_second(), 46.0, 1e-9);
  EXPECT_NEAR(pcie_generation(6).practical.as_gib_per_second(), 92.0, 1e-9);
  EXPECT_THROW(pcie_generation(7), Error);
}

TEST(DmaEngine, SingleTransferTiming) {
  sim::Scheduler scheduler;
  DmaEngineConfig config;
  config.engine_bandwidth = Bandwidth::gib_per_second(10.0);
  config.setup_latency = microseconds(40);
  config.per_transfer_overhead = microseconds(4);
  DmaEngine dma(scheduler, config);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await dma.transfer(10 * kMiB, Direction::kHostToDevice);
  });
  scheduler.run();
  runner.check();
  // 10 MiB at 10 GiB/s ~ 976.6 us, plus 44 us of setup+overhead.
  const double ms = to_seconds(scheduler.now()) * 1e3;
  EXPECT_NEAR(ms, 0.9766 + 0.044, 0.002);
  EXPECT_EQ(dma.bytes_to_device(), 10 * kMiB);
  EXPECT_EQ(dma.transfers(), 1u);
}

TEST(DmaEngine, BothDirectionsShareTheEngine) {
  // The mechanism behind the paper's scaling wall: H2D and D2H descriptors
  // drain through one engine, capping *aggregate* throughput.
  sim::Scheduler scheduler;
  DmaEngineConfig config;
  config.engine_bandwidth = Bandwidth::gib_per_second(10.0);
  config.setup_latency = 0;
  config.per_transfer_overhead = 0;
  DmaEngine dma(scheduler, config);
  sim::ProcessRunner runner(scheduler);
  const std::uint64_t bytes = 100 * kMiB;
  runner.spawn([&]() -> sim::Process {
    co_await dma.transfer(bytes, Direction::kHostToDevice);
  });
  runner.spawn([&]() -> sim::Process {
    co_await dma.transfer(bytes, Direction::kDeviceToHost);
  });
  scheduler.run();
  runner.check();
  const double aggregate_gib =
      static_cast<double>(2 * bytes) / to_seconds(scheduler.now()) /
      static_cast<double>(kGiB);
  EXPECT_NEAR(aggregate_gib, 10.0, 0.05);
}

TEST(DmaEngine, SetupLatencyIsPipelined) {
  // Two transfers issued together: setups overlap, engine time serialises.
  sim::Scheduler scheduler;
  DmaEngineConfig config;
  config.engine_bandwidth = Bandwidth::gib_per_second(1.0);
  config.setup_latency = microseconds(100);
  config.per_transfer_overhead = 0;
  DmaEngine dma(scheduler, config);
  sim::ProcessRunner runner(scheduler);
  for (int i = 0; i < 2; ++i) {
    runner.spawn([&]() -> sim::Process {
      co_await dma.transfer(kMiB, Direction::kHostToDevice);
    });
  }
  scheduler.run();
  runner.check();
  const Picoseconds engine_time =
      2 * Bandwidth::gib_per_second(1.0).transfer_time(kMiB);
  EXPECT_EQ(scheduler.now(), microseconds(100) + engine_time);
}

TEST(DmaEngine, UtilisationAndStats) {
  sim::Scheduler scheduler;
  DmaEngineConfig config;
  config.engine_bandwidth = Bandwidth::gib_per_second(8.0);
  config.setup_latency = 0;
  config.per_transfer_overhead = 0;
  DmaEngine dma(scheduler, config);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await dma.transfer(8 * kMiB, Direction::kDeviceToHost);
  });
  scheduler.run();
  runner.check();
  EXPECT_EQ(dma.bytes_to_host(), 8 * kMiB);
  EXPECT_NEAR(dma.utilisation(scheduler.now()), 1.0, 1e-9);
}

TEST(DmaEngine, GenerationConfigsScalePractically) {
  const auto gen3 = dma_config_for_generation(3);
  const auto gen6 = dma_config_for_generation(6);
  EXPECT_GT(gen6.engine_bandwidth.as_gib_per_second(),
            7.0 * gen3.engine_bandwidth.as_gib_per_second());
}

TEST(DmaEngine, RejectsEmptyTransfer) {
  sim::Scheduler scheduler;
  DmaEngine dma(scheduler);
  sim::ProcessRunner runner(scheduler);
  runner.spawn([&]() -> sim::Process {
    co_await dma.transfer(0, Direction::kHostToDevice);
  });
  scheduler.run();
  EXPECT_THROW(runner.check(), std::logic_error);
}

TEST(DmaEngineFaults, InjectedFailAbortsExactlyTheTargetedTransfers) {
  // "every 2" fires on ops 1 and 3: of four transfers, the second and
  // fourth abort with DmaError and are counted as failed.
  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = "pcie.dma";
  rule.kind = fault::FaultKind::kFail;
  rule.every = 2;
  plan.rules.push_back(rule);
  fault::ScopedFaultPlan armed(plan);

  sim::Scheduler scheduler;
  DmaEngine dma(scheduler);
  sim::ProcessRunner runner(scheduler);
  int failures = 0;
  runner.spawn([&]() -> sim::Process {
    for (int i = 0; i < 4; ++i) {
      try {
        co_await dma.transfer(kMiB, Direction::kHostToDevice);
      } catch (const DmaError&) {
        ++failures;
      }
    }
  });
  scheduler.run();
  runner.check();
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(dma.failed_transfers(), 2u);
}

TEST(DmaEngineFaults, InjectedStallDelaysCompletionExactly) {
  const auto run = [](bool inject) {
    std::unique_ptr<fault::ScopedFaultPlan> armed;
    if (inject) {
      fault::FaultPlan plan;
      fault::FaultRule rule;
      rule.site = "pcie.dma";
      rule.kind = fault::FaultKind::kStall;
      rule.every = 1;
      rule.duration_us = 100.0;
      plan.rules.push_back(rule);
      armed = std::make_unique<fault::ScopedFaultPlan>(plan);
    }
    sim::Scheduler scheduler;
    DmaEngine dma(scheduler);
    sim::ProcessRunner runner(scheduler);
    runner.spawn([&]() -> sim::Process {
      co_await dma.transfer(4 * kMiB, Direction::kDeviceToHost);
    });
    scheduler.run();
    runner.check();
    return scheduler.now();
  };
  const Picoseconds baseline = run(false);
  const Picoseconds stalled = run(true);
  EXPECT_EQ(stalled - baseline, microseconds(100.0));
}

}  // namespace
}  // namespace spnhbm::pcie
