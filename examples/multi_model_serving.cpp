// Multi-model serving demo: one InferenceServer hosting three SPNs with
// different input widths at once, then hot-swapping a live FPGA engine
// onto a bigger model mid-run.
//
// Phase 1 — NIPS10 is served by a simulated HBM FPGA card plus the CPU
// engine, NIPS20 and an 8-variable random SPN by one CPU engine each.
// Mixed traffic is routed per model (batches never mix models) and every
// probability is checked against the reference evaluator.
//
// Phase 2 — the FPGA engine is reactivated onto NIPS20 while the server
// runs: the swap re-composes the datapath, re-checks placement, charges
// simulated ICAP + table-staging time, and the fleet keeps serving
// throughout. NIPS10 continues on its CPU engine; NIPS20 now has two
// backends.
//
//   ./build/examples/multi_model_serving
#include <cstdio>
#include <future>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/model/artifact.hpp"
#include "spnhbm/model/registry.hpp"
#include "spnhbm/spn/random_spn.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/model_zoo.hpp"

namespace {

using namespace spnhbm;

std::vector<std::uint8_t> random_rows(Rng& rng, std::size_t rows,
                                      std::size_t features) {
  std::vector<std::uint8_t> samples(rows * features);
  for (auto& byte : samples) {
    byte = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return samples;
}

struct Traffic {
  model::ModelHandle model;
  std::vector<std::uint8_t> samples;
  std::future<std::vector<double>> future;
};

/// Drains the futures and checks every result against the artifact's own
/// compiled module — the strongest "right model answered" witness.
std::size_t drain_and_verify(std::vector<Traffic>& traffic) {
  std::size_t checked = 0;
  for (auto& t : traffic) {
    const auto results = t.future.get();
    const std::size_t features = t.model->input_features();
    for (std::size_t i = 0; i < results.size(); ++i) {
      const double want = t.model->module().evaluate(
          t.model->backend(),
          std::span<const std::uint8_t>(t.samples)
              .subspan(i * features, features));
      if (results[i] != want) {
        std::fprintf(stderr, "MISMATCH on %s sample %zu: %g != %g\n",
                     t.model->id().c_str(), i, results[i], want);
        std::exit(1);
      }
      ++checked;
    }
  }
  traffic.clear();
  return checked;
}

}  // namespace

int main() {
  // The catalogue: three artifacts with distinct input widths, registered
  // under name@version so clients can address them by bare name.
  model::ModelRegistry registry;
  auto nips10_src = workload::make_nips_model(10);
  auto nips20_src = workload::make_nips_model(20);
  registry.add(model::ModelArtifact::compile(
      "nips10", "1", std::move(nips10_src.spn),
      arith::make_float64_backend()));
  registry.add(model::ModelArtifact::compile(
      "nips20", "1", std::move(nips20_src.spn),
      arith::make_float64_backend()));
  spn::RandomSpnConfig random_config;
  random_config.variables = 8;
  random_config.seed = 20220530;
  registry.add(model::ModelArtifact::compile(
      "rand8", "1", spn::make_random_spn(random_config),
      arith::make_float64_backend()));
  const auto nips10 = registry.get("nips10");
  const auto nips20 = registry.get("nips20");
  const auto rand8 = registry.get("rand8");
  for (const auto& id : registry.ids()) {
    std::printf("registered %s\n", registry.get(id)->describe().c_str());
  }

  engine::ServerConfig config;
  config.batch_samples = 32;
  config.max_latency = std::chrono::microseconds(300);
  config.policy = engine::DispatchPolicy::kLeastLoaded;
  engine::InferenceServer server(config);
  server.register_engine(std::make_shared<engine::FpgaSimEngine>(nips10));
  server.register_engine(std::make_shared<engine::CpuEngine>(nips10));
  server.register_engine(std::make_shared<engine::CpuEngine>(nips20));
  server.register_engine(std::make_shared<engine::CpuEngine>(rand8));
  server.start();

  // Phase 1: mixed traffic across all three models.
  Rng rng(17);
  const std::vector<model::ModelHandle> zoo = {nips10, nips20, rand8};
  std::vector<Traffic> traffic;
  for (std::size_t r = 0; r < 120; ++r) {
    const auto& model = zoo[r % zoo.size()];
    auto samples = random_rows(rng, 1 + rng.next_below(8),
                               model->input_features());
    auto future = server.submit(model->name(), samples);
    traffic.push_back({model, std::move(samples), std::move(future)});
  }
  std::size_t checked = drain_and_verify(traffic);
  std::printf("phase 1: %zu samples verified across %zu models\n", checked,
              zoo.size());

  // Phase 2: hot-swap the FPGA card (engine 0) onto NIPS20 while the
  // server runs. The returned future resolves when the simulated
  // reconfiguration — placement re-check, ICAP programming, table
  // staging — has finished; NIPS10 keeps serving on its CPU engine.
  server.activate(0, nips20).get();
  std::printf("hot-swap: engine 0 now serves %s (%llu reconfiguration, "
              "%.3f simulated seconds)\n",
              server.engine_model(0).c_str(),
              static_cast<unsigned long long>(
                  server.engine(0).stats().reconfigurations),
              server.engine(0).stats().reconfiguration_seconds);

  for (std::size_t r = 0; r < 120; ++r) {
    const auto& model = zoo[r % zoo.size()];
    auto samples = random_rows(rng, 1 + rng.next_below(8),
                               model->input_features());
    auto future = server.submit(model->name(), samples);
    traffic.push_back({model, std::move(samples), std::move(future)});
  }
  checked = drain_and_verify(traffic);
  std::printf("phase 2: %zu samples verified after the swap\n", checked);

  server.stop();
  std::printf("%s\n", server.stats().describe().c_str());
  for (const auto& [id, per] : server.stats().per_model) {
    std::printf("  %-10s %llu requests, %llu samples, %llu batches\n",
                id.c_str(), static_cast<unsigned long long>(per.requests),
                static_cast<unsigned long long>(per.samples),
                static_cast<unsigned long long>(per.batches));
  }
  return 0;
}
