// Remote serving demo: the full TCP front end in one process — an
// InferenceServer wrapped by the RpcServer on an ephemeral loopback
// port, an RpcClient issuing pipelined requests over the wire, and the
// open-loop load generator replaying a seeded Poisson arrival schedule
// across four connections.
//
// The client results are verified against the reference evaluator, so a
// framing or routing bug anywhere in the wire path shows up as a
// probability mismatch, and both the loadgen report and the server's
// conservation identities (received = accepted + rejected + shed,
// accepted = completed + failed) are checked before exiting.
//
//   ./build/examples/remote_serving
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/rpc/client.hpp"
#include "spnhbm/rpc/loadgen.hpp"
#include "spnhbm/rpc/server.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

int main() {
  using namespace spnhbm;
  const std::size_t variables = 10;

  // The served model, behind the usual batching server.
  const auto model = workload::make_nips_model(variables);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);
  engine::ServerConfig config;
  config.batch_samples = 64;
  config.max_latency = std::chrono::microseconds(300);
  engine::InferenceServer server(config);
  server.register_engine(std::make_shared<engine::CpuEngine>(module));
  server.start();

  // The TCP front door, on an ephemeral loopback port.
  rpc::RpcServerConfig rpc_config;
  rpc_config.admission.max_outstanding_samples = 1 << 14;
  rpc::RpcServer front(server, rpc_config);
  front.start();
  std::printf("serving %s on 127.0.0.1:%u\n", model.name.c_str(),
              front.port());

  // A remote client: the handshake advertises the loaded models, every
  // request travels as wire frames and comes back bit-exact.
  auto client = rpc::RpcClient::connect("127.0.0.1", front.port());
  const rpc::ServerInfo& info = client->server_info();
  std::printf("handshake: build %s, %zu model(s), %u features\n",
              info.build_version.c_str(), info.models.size(),
              info.input_features(info.models.at(0).id));

  workload::CorpusConfig corpus;
  corpus.vocabulary = variables;
  corpus.documents = 256;
  corpus.seed = 99;
  const auto docs = workload::make_bag_of_words(corpus).to_bytes();
  std::vector<std::vector<std::uint8_t>> requests;
  for (std::size_t cursor = 0; (cursor + 8) * variables <= docs.size();
       cursor += 8) {
    requests.emplace_back(docs.begin() + cursor * variables,
                          docs.begin() + (cursor + 8) * variables);
  }
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(requests.size());
  for (const auto& request : requests) {
    futures.push_back(client->submit("", request));
  }

  spn::Evaluator reference(model.spn);
  std::size_t checked = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto results = futures[r].get();
    for (std::size_t i = 0; i < results.size(); ++i) {
      const double want = reference.evaluate_bytes(
          std::span<const std::uint8_t>(requests[r])
              .subspan(i * variables, variables));
      if (want > 0.0 && std::abs(results[i] / want - 1.0) > 1e-9) {
        std::printf("MISMATCH request %zu sample %zu: %g vs %g\n", r, i,
                    results[i], want);
        return 1;
      }
      ++checked;
    }
  }
  std::printf("remote client: %zu requests (%zu samples), all verified\n",
              requests.size(), checked);
  client->close();

  // The open-loop load generator against the same port: a seeded Poisson
  // schedule over 4 connections, arrivals never waiting for responses.
  rpc::LoadgenConfig loadgen;
  loadgen.port = front.port();
  loadgen.payloads.assign(requests.begin(), requests.begin() + 8);
  loadgen.request_count = 400;
  loadgen.rate_rps = 20'000.0;
  loadgen.arrival = rpc::ArrivalProcess::kPoisson;
  loadgen.connections = 4;
  const rpc::LoadgenReport report = rpc::run_loadgen(loadgen);
  std::printf("%s\n", report.describe().c_str());
  if (!report.conserved() || report.ok() != report.sent) {
    std::printf("loadgen run lost requests\n");
    return 1;
  }

  front.stop();
  server.stop();
  const rpc::RpcServerStats stats = front.stats();
  std::printf("rpc server: %s\n", stats.describe().c_str());
  if (!stats.conserved()) {
    std::printf("conservation VIOLATED\n");
    return 1;
  }
  return 0;
}
