// End-to-end NIPS workload: train a Mixed SPN on the synthetic NIPS
// bag-of-words corpus (the paper's benchmark recipe), check its structure
// against the device, and race the 8-PE HBM design against the prior-work
// F1 configuration and the native CPU baseline on this machine.
//
//   ./build/examples/nips_end_to_end [variables=20]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "spnhbm/baselines/cpu_engine.hpp"
#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/runtime/inference_runtime.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

int main(int argc, char** argv) {
  using namespace spnhbm;
  const std::size_t variables =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;

  // 1. Learn the model from the corpus (LearnSPN on synthetic NIPS data).
  const auto model = workload::make_nips_model(variables);
  std::printf("learned %s: %s\n", model.name.c_str(),
              spn::compute_stats(model.spn).describe().c_str());

  // 2. Compile and size the design.
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model.spn, *backend);
  const int max_pes = fpga::max_placeable_pes(module, arith::FormatKind::kCfp,
                                              fpga::Platform::kHbmXupVvh);
  const auto design = fpga::estimate_design(
      module, arith::FormatKind::kCfp,
      fpga::DesignSpec{fpga::Platform::kHbmXupVvh, max_pes, 1});
  std::printf("design: %d PEs, %s\n", max_pes, design.describe().c_str());

  // 3. Simulated HBM run (end-to-end, transfers included).
  {
    sim::Scheduler scheduler;
    sim::ProcessRunner runner(scheduler);
    tapasco::CompositionConfig composition;
    composition.pe_count = max_pes;
    composition.compute_results = false;
    tapasco::Device device(runner, module, *backend, composition);
    runtime::InferenceRuntime rt(runner, device, module);
    const auto stats = rt.run(static_cast<std::uint64_t>(max_pes) * 2'000'000);
    std::printf("HBM x%d (simulated): %s\n", max_pes,
                stats.describe().c_str());
  }

  // 4. Prior-work F1 configuration for contrast.
  {
    const auto f64 = arith::make_float64_backend();
    const auto module_f64 = compiler::compile_spn(model.spn, *f64);
    const int f1_pes = std::min(
        fpga::max_placeable_pes(module_f64, arith::FormatKind::kFloat64,
                                fpga::Platform::kF1),
        4);
    sim::Scheduler scheduler;
    sim::ProcessRunner runner(scheduler);
    tapasco::CompositionConfig composition;
    composition.platform = fpga::Platform::kF1;
    composition.pe_count = f1_pes;
    composition.memory_channels = f1_pes;
    tapasco::Device device(runner, module_f64, *f64, composition);
    runtime::RuntimeConfig config;
    config.threads_per_pe = 2;
    runtime::InferenceRuntime rt(runner, device, module_f64, config);
    const auto stats = rt.run(static_cast<std::uint64_t>(f1_pes) * 1'000'000);
    std::printf("F1 x%d [8] (simulated): %s\n", f1_pes,
                stats.describe().c_str());
  }

  // 5. Native CPU baseline, measured for real on this machine.
  {
    const auto f64 = arith::make_float64_backend();
    const auto module_f64 = compiler::compile_spn(model.spn, *f64);
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    baselines::CpuInferenceEngine engine(module_f64, cores);
    const double rate = engine.measure_throughput(200'000);
    std::printf("CPU x%u threads (native, this machine): %s\n", cores,
                format_rate(rate).c_str());
  }

  // 6. Functional spot check on real corpus documents.
  {
    workload::CorpusConfig corpus;
    corpus.documents = 4;
    corpus.vocabulary = variables;
    const auto docs = workload::make_bag_of_words(corpus);
    sim::Scheduler scheduler;
    sim::ProcessRunner runner(scheduler);
    tapasco::CompositionConfig composition;
    tapasco::Device device(runner, module, *backend, composition);
    runtime::InferenceRuntime rt(runner, device, module);
    const auto results = rt.infer(docs.to_bytes());
    std::printf("\njoint probabilities of %zu real documents:\n",
                results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("  doc %zu: %.6e\n", i, results[i]);
    }
  }
  return 0;
}
