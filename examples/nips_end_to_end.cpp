// End-to-end NIPS workload: train a Mixed SPN on the synthetic NIPS
// bag-of-words corpus (the paper's benchmark recipe), check its structure
// against the device, and race the 8-PE HBM design against the prior-work
// F1 configuration and the native CPU baseline on this machine.
//
//   ./build/examples/nips_end_to_end [variables=20]
#include <cstdio>
#include <cstdlib>

#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/fpga/resource_model.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

int main(int argc, char** argv) {
  using namespace spnhbm;
  const std::size_t variables =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;

  // 1. Learn the model from the corpus (LearnSPN on synthetic NIPS data).
  const auto model = workload::make_nips_model(variables);
  std::printf("learned %s: %s\n", model.name.c_str(),
              spn::compute_stats(model.spn).describe().c_str());

  // 2. Compile and size the design.
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model.spn, *backend);
  const int max_pes = fpga::max_placeable_pes(module, arith::FormatKind::kCfp,
                                              fpga::Platform::kHbmXupVvh);
  const auto design = fpga::estimate_design(
      module, arith::FormatKind::kCfp,
      fpga::DesignSpec{fpga::Platform::kHbmXupVvh, max_pes, 1});
  std::printf("design: %d PEs, %s\n", max_pes, design.describe().c_str());

  // 3. Simulated HBM run (end-to-end, transfers included) through the
  //    unified engine interface.
  {
    engine::FpgaEngineConfig config;
    config.pe_count = max_pes;
    config.compute_results = false;
    engine::FpgaSimEngine hbm(module, *backend, config);
    const double rate =
        hbm.measure_throughput(static_cast<std::uint64_t>(max_pes) *
                               2'000'000);
    std::printf("HBM x%d (simulated): %s -> %s\n", max_pes,
                hbm.stats().describe().c_str(), format_rate(rate).c_str());
  }

  // 4. Prior-work F1 configuration for contrast — same interface, other
  //    platform config.
  {
    const auto f64 = arith::make_float64_backend();
    const auto module_f64 = compiler::compile_spn(model.spn, *f64);
    const int f1_pes = std::min(
        fpga::max_placeable_pes(module_f64, arith::FormatKind::kFloat64,
                                fpga::Platform::kF1),
        4);
    engine::FpgaEngineConfig config;
    config.platform = fpga::Platform::kF1;
    config.pe_count = f1_pes;
    config.memory_channels = f1_pes;
    config.threads_per_pe = 2;
    config.compute_results = false;
    engine::FpgaSimEngine f1(module_f64, *f64, config);
    const double rate =
        f1.measure_throughput(static_cast<std::uint64_t>(f1_pes) * 1'000'000);
    std::printf("F1 x%d [8] (simulated): %s\n", f1_pes,
                format_rate(rate).c_str());
  }

  // 5. Native CPU baseline, measured for real on this machine.
  {
    const auto f64 = arith::make_float64_backend();
    const auto module_f64 = compiler::compile_spn(model.spn, *f64);
    engine::CpuEngine cpu(module_f64);
    const double rate = cpu.measure_throughput(200'000);
    std::printf("CPU x%zu threads (native, this machine): %s\n",
                cpu.threads(), format_rate(rate).c_str());
  }

  // 6. Functional spot check on real corpus documents.
  {
    workload::CorpusConfig corpus;
    corpus.documents = 4;
    corpus.vocabulary = variables;
    const auto docs = workload::make_bag_of_words(corpus);
    engine::FpgaSimEngine accelerator(module, *backend);
    const auto results = accelerator.infer(docs.to_bytes());
    std::printf("\njoint probabilities of %zu real documents:\n",
                results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("  doc %zu: %.6e\n", i, results[i]);
    }
  }
  return 0;
}
