// Multi-backend serving demo: the InferenceServer shards a stream of
// small, independent inference requests across three heterogeneous
// backends — the simulated HBM FPGA card, the native CPU engine and the
// analytic V100 model — through the one InferenceEngine interface.
//
// The server coalesces the requests into block-sized batches (dynamic
// batching with a max-latency flush), dispatches by least expected
// completion time, and applies backpressure when the queue bound is hit.
// Every result is checked against the reference evaluator at the end.
//
//   ./build/examples/serving
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/gpu_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

int main() {
  using namespace spnhbm;
  const std::size_t variables = 10;

  // The served model: LearnSPN on the synthetic NIPS corpus, compiled once
  // in float64 so all three backends produce comparable probabilities.
  const auto model = workload::make_nips_model(variables);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);

  engine::ServerConfig config;
  config.batch_samples = 256;
  config.max_latency = std::chrono::microseconds(500);
  config.max_queue_samples = 1 << 14;
  config.policy = engine::DispatchPolicy::kLeastLoaded;
  engine::InferenceServer server(config);
  server.register_engine(
      std::make_shared<engine::FpgaSimEngine>(module, *backend));
  server.register_engine(std::make_shared<engine::CpuEngine>(module));
  server.register_engine(std::make_shared<engine::GpuModelEngine>(module));
  server.start();

  // Client side: 200 requests of 1..32 in-distribution documents each.
  workload::CorpusConfig corpus;
  corpus.vocabulary = variables;
  corpus.documents = 1024;
  corpus.seed = 99;
  const auto docs = workload::make_bag_of_words(corpus).to_bytes();
  Rng rng(17);
  std::vector<std::vector<std::uint8_t>> requests;
  std::size_t cursor = 0;
  while (requests.size() < 200) {
    const std::size_t count = 1 + rng.next_below(32);
    if ((cursor + count) * variables > docs.size()) {
      cursor = 0;
      continue;
    }
    requests.emplace_back(docs.begin() + cursor * variables,
                          docs.begin() + (cursor + count) * variables);
    cursor += count;
  }

  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(requests.size());
  for (const auto& request : requests) futures.push_back(server.submit(request));

  // Verify every request's probabilities against the reference evaluator.
  spn::Evaluator reference(model.spn);
  std::size_t checked = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto results = futures[r].get();
    for (std::size_t i = 0; i < results.size(); ++i) {
      const double want = reference.evaluate_bytes(
          std::span<const std::uint8_t>(requests[r])
              .subspan(i * variables, variables));
      if (want > 0.0 &&
          std::abs(results[i] / want - 1.0) > 1e-9) {
        std::printf("MISMATCH request %zu sample %zu: %g vs %g\n", r, i,
                    results[i], want);
        return 1;
      }
      ++checked;
    }
  }
  server.stop();

  std::printf("served %zu requests (%zu samples), all verified\n",
              requests.size(), checked);
  std::printf("server: %s\n", server.stats().describe().c_str());
  for (std::size_t i = 0; i < server.engine_count(); ++i) {
    std::printf("  %-28s %s\n", server.engine(i).capabilities().name.c_str(),
                server.engine(i).stats().describe().c_str());
  }
  return 0;
}
