// Out-of-domain detection with SPN probabilities — the uncertainty
// property the paper's background section highlights (Peharz et al.:
// confronting an SPN with out-of-domain inputs yields low probabilities,
// i.e. the model KNOWS it is uncertain).
//
// We train a Mixed SPN on the synthetic NIPS corpus, run three input
// populations through the simulated accelerator, and show the
// log-probability separation:
//   * in-domain documents from the training distribution,
//   * out-of-domain "uniform noise" documents,
//   * partially observed documents (marginalised features, the paper's
//     "missing features" capability — evaluated on the reference path,
//     since marginalisation is a host-side query transform).
//
//   ./build/examples/uncertainty_ood
#include <cmath>
#include <cstdio>

#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/util/rng.hpp"
#include "spnhbm/util/stats.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

int main() {
  using namespace spnhbm;
  const std::size_t variables = 10;
  const std::size_t documents = 64;

  const auto model = workload::make_nips_model(variables);
  const auto backend = arith::make_lns_backend(arith::paper_lns_format());
  const auto module = compiler::compile_spn(model.spn, *backend);

  engine::FpgaSimEngine rt(module, *backend);

  // In-domain: fresh documents from the same corpus distribution.
  workload::CorpusConfig corpus;
  corpus.vocabulary = variables;
  corpus.documents = documents;
  corpus.seed = 777;  // held-out seed, same distribution
  const auto in_domain = workload::make_bag_of_words(corpus);

  // Out-of-domain: uniform random byte noise.
  Rng rng(4242);
  std::vector<std::uint8_t> noise(documents * variables);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_below(256));

  const auto p_in = rt.infer(in_domain.to_bytes());
  const auto p_out = rt.infer(noise);

  RunningStats ll_in, ll_out;
  for (const double p : p_in) ll_in.add(std::log(std::max(p, 1e-300)));
  for (const double p : p_out) ll_out.add(std::log(std::max(p, 1e-300)));

  std::printf("accelerator-evaluated log-likelihoods (%zu docs each):\n",
              documents);
  std::printf("  in-domain:      mean %8.2f  (min %8.2f, max %8.2f)\n",
              ll_in.mean(), ll_in.min(), ll_in.max());
  std::printf("  out-of-domain:  mean %8.2f  (min %8.2f, max %8.2f)\n",
              ll_out.mean(), ll_out.min(), ll_out.max());
  std::printf("  separation:     %.2f nats -> the SPN flags OOD inputs\n\n",
              ll_in.mean() - ll_out.mean());

  // Missing features: marginalise half the variables of one document and
  // watch the probability rise monotonically toward 1 (the tractable
  // marginalisation property).
  spn::Evaluator reference(model.spn);
  std::vector<double> document(variables);
  for (std::size_t v = 0; v < variables; ++v) {
    document[v] = in_domain.at(0, v);
  }
  std::printf("marginalising document 0 one variable at a time:\n");
  std::printf("  %-28s %s\n", "observed variables", "probability");
  for (std::size_t hidden = 0; hidden <= variables; hidden += 2) {
    auto query = document;
    for (std::size_t v = 0; v < hidden; ++v) query[v] = spn::missing_value();
    std::printf("  %-28zu %.6e\n", variables - hidden,
                reference.evaluate(query));
  }
  return 0;
}
