// Quickstart: build a small Mixed SPN, compile it to an accelerator
// datapath, stand up the simulated 1-PE HBM card behind the unified
// InferenceEngine interface, and run inference on it end-to-end — the
// complete toolflow of the paper in ~80 lines.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "spnhbm/arith/backend.hpp"
#include "spnhbm/compiler/datapath.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/spn/text_format.hpp"

int main() {
  using namespace spnhbm;

  // 1. Describe the SPN in the SPFlow-style text format: a two-component
  //    mixture over two byte-valued features.
  const spn::Spn model = spn::parse_spn(R"(
    Sum(0.3*Product(Histogram(V0|[0,64,128,256];[0.0078125,0.0078125,0.0])
                  * Histogram(V1|[0,128,256];[0.0078125,0.0]))
      + 0.7*Product(Histogram(V0|[0,64,256];[0.0078125,0.00260416666666666652])
                  * Histogram(V1|[0,128,256];[0.005,0.0028125])))
  )");
  std::printf("model: %s\n", spn::compute_stats(model).describe().c_str());

  // 2. Compile it to a pipelined datapath in the paper's CFP arithmetic.
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());
  const auto module = compiler::compile_spn(model, *backend);
  std::printf("%s\n", module.report().c_str());

  // 3. Stand up the simulated accelerator card behind the unified engine
  //    interface. The engine owns the whole stack: DES scheduler, TaPaSCo
  //    composition (PE -> SmartConnect -> dedicated HBM channel) and the
  //    §IV-B host runtime. Swapping in engine::CpuEngine or
  //    engine::GpuModelEngine here changes the backend, nothing else.
  engine::FpgaSimEngine accelerator(module, *backend);
  std::printf("engine: %s\n", accelerator.capabilities().name.c_str());

  // 4. Run real samples through the accelerator (copy -> launch -> read
  //    back) and compare against the reference evaluator.
  const std::vector<std::uint8_t> samples{
      10, 200,   // component B territory
      100, 30,   // component A territory
      70, 140,   // mixed
  };
  const auto results = accelerator.infer(samples);

  spn::Evaluator reference(model);
  std::printf("\n%-14s %-22s %-22s\n", "sample", "accelerator", "reference");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double want = reference.evaluate_bytes(
        std::span<const std::uint8_t>(samples).subspan(i * 2, 2));
    std::printf("(%3u, %3u)     %-22.8e %-22.8e\n", samples[i * 2],
                samples[i * 2 + 1], results[i], want);
  }
  std::printf("\nvirtual time elapsed: %.2f us\n",
              to_seconds(accelerator.virtual_now()) * 1e6);
  return 0;
}
