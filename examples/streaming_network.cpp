// The in-network streaming variant (paper §V-D, citing [7]): instead of
// buffering batches in HBM behind a PCIe DMA, the SPN accelerators sit in
// a 100G network pipeline and process samples at line rate — no memory
// accesses at all. The paper uses this to put the HBM architecture's
// efficiency in context: for NIPS80, 99.078 Gbit/s of line rate bounds
// inference at 140.7 Msamples/s, and the HBM design's measured 116.6
// Msamples/s is ~83% of that ceiling despite paying for PCIe and HBM.
//
// This example *simulates* the streaming pipeline (ingress link ->
// replicated datapaths -> egress link) per benchmark, simulates the HBM
// design's end-to-end rate, and prints the comparison.
//
//   ./build/examples/streaming_network
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/network/streaming.hpp"
#include "spnhbm/util/strings.hpp"
#include "spnhbm/util/table.hpp"
#include "spnhbm/workload/model_zoo.hpp"

int main() {
  using namespace spnhbm;
  const auto backend = arith::make_cfp_backend(arith::paper_cfp_format());

  Table table({"benchmark", "B/sample (wire)", "replicas",
               "streaming sim [Ms/s]", "ceiling [Ms/s]",
               "HBM end-to-end [Ms/s]", "HBM vs streaming"});
  for (const std::size_t size : workload::nips_benchmark_sizes()) {
    const auto model = workload::make_nips_model(size);
    const auto module = compiler::compile_spn(model.spn, *backend);

    // Streaming pipeline: replicate datapaths until the 100G wire, not
    // the datapath, is the limit ([7]'s "reasonable degree of
    // replication").
    network::StreamingConfig stream_config;
    {
      network::LinkConfig link;
      const double per_replica =
          fpga::cal::kPeClockHz /
          compiler::DatapathModule::initiation_interval();
      const double by_link =
          Bandwidth::gbit_per_second(99.078).as_bytes_per_second() /
          static_cast<double>(model.total_bytes_per_sample());
      stream_config.replicas = static_cast<std::size_t>(
          std::max(1.0, std::ceil(by_link / per_replica)));
    }
    sim::Scheduler stream_scheduler;
    sim::ProcessRunner stream_runner(stream_scheduler);
    network::StreamingPipeline pipeline(stream_runner, module, stream_config);
    const double streaming =
        pipeline.run(2'000'000).samples_per_second;
    const double ceiling = pipeline.line_rate_ceiling();

    // Simulated HBM design (largest placeable), via the engine interface.
    engine::FpgaEngineConfig hbm_config;
    hbm_config.pe_count = 0;  // largest placeable
    hbm_config.compute_results = false;
    engine::FpgaSimEngine hbm_engine(module, *backend, hbm_config);
    const int pes = hbm_engine.pe_count();
    const double hbm = hbm_engine.measure_throughput(
        static_cast<std::uint64_t>(pes) * 1'500'000);

    table.add_row({model.name,
                   strformat("%llu", static_cast<unsigned long long>(
                                         pipeline.wire_bytes_per_sample())),
                   strformat("%zu", stream_config.replicas),
                   strformat("%.1f", streaming / 1e6),
                   strformat("%.1f", ceiling / 1e6),
                   strformat("%.1f", hbm / 1e6),
                   strformat("%.0f%%", hbm / streaming * 100)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper reference (NIPS80): streaming ceiling 140.7 Ms/s vs measured\n"
      "116.6 Ms/s on the HBM design (~17%% streaming advantage); the\n"
      "streaming variant targets datacenter-scale deployments, the\n"
      "HBM+PCIe design smaller setups without 100G infrastructure (§V-D).\n");
  return 0;
}
