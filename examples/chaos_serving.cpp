// Self-healing serving demo: a deterministic fault plan knocks out the
// FPGA engine's first six submits, and the serving layer rides through it
// — failed batches retry and fail over to the CPU engine, the FPGA engine
// is quarantined after consecutive failures, circuit-breaker probes keep
// testing it at growing intervals, and the first successful probe
// readmits it. The recovery timeline is printed as it happens, and every
// request still resolves with the correct probability.
//
//   ./build/examples/chaos_serving
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "spnhbm/engine/chaos_engine.hpp"
#include "spnhbm/engine/cpu_engine.hpp"
#include "spnhbm/engine/fpga_engine.hpp"
#include "spnhbm/engine/server.hpp"
#include "spnhbm/fault/fault.hpp"
#include "spnhbm/spn/evaluate.hpp"
#include "spnhbm/workload/bag_of_words.hpp"
#include "spnhbm/workload/model_zoo.hpp"

int main() {
  using namespace spnhbm;
  using Clock = std::chrono::steady_clock;
  const std::size_t variables = 10;
  const std::size_t samples_per_request = 8;

  const auto model = workload::make_nips_model(variables);
  const auto backend = arith::make_float64_backend();
  const auto module = compiler::compile_spn(model.spn, *backend);

  // Both engines behind the ChaosEngine decorator, so the fault plan can
  // target them by name at the engine.submit site.
  auto fpga = std::make_shared<engine::ChaosEngine>(
      std::make_unique<engine::FpgaSimEngine>(module, *backend));
  auto cpu = std::make_shared<engine::ChaosEngine>(
      std::make_unique<engine::CpuEngine>(module));
  const std::string fpga_name = fpga->capabilities().name;

  // The scripted outage: the FPGA engine rejects its first six submits
  // (ops 0..5), then recovers. Everything else is healthy.
  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultRule outage;
  outage.site = "engine.submit";
  outage.instance = fpga_name;
  outage.kind = fault::FaultKind::kFail;
  outage.has_window = true;
  outage.from = 0;
  outage.until = 6;
  plan.rules.push_back(outage);
  fault::ScopedFaultPlan armed(plan);

  engine::ServerConfig config;
  config.batch_samples = samples_per_request;
  config.policy = engine::DispatchPolicy::kRoundRobin;
  config.retry.max_attempts = 2;  // one retry, preferring the other engine
  config.retry.backoff_base = std::chrono::microseconds(100);
  config.health.degraded_after = 1;
  config.health.quarantine_after = 2;
  config.health.probe_interval = std::chrono::milliseconds(6);
  config.health.probe_backoff_multiplier = 1.5;
  config.health.probe_interval_cap = std::chrono::milliseconds(20);
  engine::InferenceServer server(config);
  server.register_engine(fpga, /*priority=*/0);
  server.register_engine(cpu, /*priority=*/0);
  server.start();

  std::printf("chaos plan: %s fails engine.submit ops [0, 6)\n\n",
              fpga_name.c_str());

  // Client side: a paced stream of requests, while we watch the health
  // state machine and print every transition as a timeline.
  workload::CorpusConfig corpus;
  corpus.vocabulary = variables;
  corpus.documents = 1024;
  corpus.seed = 99;
  const auto docs = workload::make_bag_of_words(corpus).to_bytes();

  const auto t0 = Clock::now();
  const auto elapsed_ms = [&] {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };
  std::array<engine::EngineHealth, 2> last_health = {
      engine::EngineHealth::kHealthy, engine::EngineHealth::kHealthy};
  const auto poll_health = [&] {
    for (std::size_t i = 0; i < server.engine_count(); ++i) {
      const engine::EngineHealth health = server.engine_health(i);
      if (health != last_health[i]) {
        std::printf("[%7.1f ms] %-16s %s -> %s\n", elapsed_ms(),
                    server.engine(i).capabilities().name.c_str(),
                    engine::to_string(last_health[i]).c_str(),
                    engine::to_string(health).c_str());
        last_health[i] = health;
      }
    }
  };

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::future<std::vector<double>>> futures;
  std::size_t cursor = 0;
  for (std::size_t r = 0; r < 60; ++r) {
    if ((cursor + samples_per_request) * variables > docs.size()) cursor = 0;
    requests.emplace_back(
        docs.begin() + static_cast<std::ptrdiff_t>(cursor * variables),
        docs.begin() +
            static_cast<std::ptrdiff_t>((cursor + samples_per_request) *
                                        variables));
    cursor += samples_per_request;
    futures.push_back(server.submit(requests.back()));
    poll_health();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Keep polling until the engine is readmitted (bounded wait).
  for (int i = 0; i < 200 && last_health[0] != engine::EngineHealth::kHealthy;
       ++i) {
    poll_health();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& future : futures) future.wait();
  poll_health();
  server.stop();

  // Every request resolved with the reference probabilities despite the
  // outage: transient faults never reach the client.
  spn::Evaluator reference(model.spn);
  std::size_t checked = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto results = futures[r].get();
    for (std::size_t i = 0; i < results.size(); ++i) {
      const double want = reference.evaluate_bytes(
          std::span<const std::uint8_t>(requests[r])
              .subspan(i * variables, variables));
      // Engine results agree with the reference within a few ulps (same
      // operator program, different evaluation order).
      if (std::abs(results[i] - want) >
          1e-12 * std::max(std::abs(want), 1e-300)) {
        std::printf("MISMATCH request %zu sample %zu\n", r, i);
        return 1;
      }
      ++checked;
    }
  }

  const engine::ServerStats stats = server.stats();
  std::printf("\n%zu samples verified against the reference evaluator\n",
              checked);
  std::printf("server: %s\n", stats.describe().c_str());
  std::printf("faults injected: %llu\n",
              static_cast<unsigned long long>(fault::injector().injected()));
  if (stats.failed_requests != 0 || stats.readmissions == 0) {
    std::printf("unexpected recovery outcome\n");
    return 1;
  }
  return 0;
}
